package core

import (
	"math/bits"

	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Classifier implements the paper's Appendix A algorithm: it classifies the
// misses of an on-the-fly (OTF) write-invalidate execution over an infinite
// cache into PC, CTS, CFS, PTS and PFS misses. Feed it every trace reference
// in order (it implements trace.Consumer and ignores synchronization and
// phase references), then call Finish.
//
// Its essential count (Counts.Essential) is the minimum possible number of
// misses for the trace at this block size, and its total (Counts.Total)
// equals the miss count of a plain on-the-fly invalidation schedule.
type Classifier struct {
	life     *Lifetimes
	present  *dense.Map[uint64]
	dataRefs uint64
}

// NewClassifier returns a Classifier for procs processors (at most MaxProcs)
// and block geometry g.
func NewClassifier(procs int, g mem.Geometry) *Classifier {
	return &Classifier{
		life:    NewLifetimes(procs, g),
		present: dense.NewMap[uint64](0),
	}
}

// Ref implements trace.Consumer.
func (c *Classifier) Ref(r trace.Ref) {
	switch r.Kind {
	case trace.Load:
		c.access(int(r.Proc), r.Addr, false)
	case trace.Store:
		c.access(int(r.Proc), r.Addr, true)
	}
}

// RefBatch implements trace.BatchConsumer.
func (c *Classifier) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		c.Ref(r)
	}
}

// access is the paper's read_action/write_action pair.
func (c *Classifier) access(p int, a mem.Addr, store bool) {
	c.dataRefs++
	b := c.life.Geometry().BlockOf(a)
	bit := uint64(1) << uint(p)

	present, _ := c.present.GetOrPut(uint64(b))
	// read_action: a miss opens a new lifetime.
	if *present&bit == 0 {
		c.life.OpenMiss(p, a)
		*present |= bit
	}
	// read_action: accessing a communicated word makes the lifetime
	// essential.
	c.life.Access(p, a)

	if !store {
		return
	}
	// write_action: classify every other present copy (their lifetimes
	// end now, on the fly), then flag the new value as uncommunicated for
	// every other processor.
	others := *present &^ bit
	for others != 0 {
		q := bits.TrailingZeros64(others)
		others &^= 1 << uint(q)
		c.life.CloseInvalidate(q, b)
	}
	*present = bit
	c.life.RecordStore(p, a)
}

// DataRefs returns the number of data references classified so far: the
// miss-rate denominator.
func (c *Classifier) DataRefs() uint64 { return c.dataRefs }

// Hook installs a per-miss callback, invoked with each miss's verdict when
// its lifetime closes (the paper's scheme decides at lifetime end, not at
// miss time). Install before feeding references.
func (c *Classifier) Hook(fn func(p int, b mem.Block, class Class)) {
	c.life.OnClassify = fn
}

// Snapshot returns the verdicts recorded so far, excluding still-open
// lifetimes. Used for phase-resolved series.
func (c *Classifier) Snapshot() Counts { return c.life.Snapshot() }

// Finish classifies the lifetimes still open at the end of the trace and
// returns the totals. The classifier must not be used afterwards.
func (c *Classifier) Finish() Counts {
	mOursRefs.Add(c.dataRefs)
	return c.life.Finish()
}

// Classify runs the Appendix A algorithm over an entire trace stream and
// returns the miss counts and the number of data references.
func Classify(r trace.Reader, g mem.Geometry) (Counts, uint64, error) {
	c := NewClassifier(r.NumProcs(), g)
	if err := trace.Drive(r, c); err != nil {
		return Counts{}, 0, err
	}
	return c.Finish(), c.DataRefs(), nil
}
