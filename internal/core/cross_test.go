package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

// The joint matrix must account for every miss exactly once, and its
// marginals must equal each scheme's own counts.
func TestCrossMatrixMarginals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 5, 600, 48)
		for _, size := range []int{4, 8, 32, 128} {
			g := mem.MustGeometry(size)
			c := NewCrossClassifier(5, g)
			for _, r := range tr.Refs {
				c.Ref(r)
			}
			matrix, ours, eggers, torr := c.Finish()

			if matrix.Total() != ours.Total() {
				t.Logf("size %d: matrix total %d != miss total %d", size, matrix.Total(), ours.Total())
				return false
			}
			ve := matrix.OursVsEggers()
			vt := matrix.OursVsTorrellas()
			// Ours' marginals.
			oursWant := [3]uint64{ours.Cold(), ours.PTS, ours.PFS}
			for o := 0; o < 3; o++ {
				var rowE, rowT uint64
				for x := 0; x < 3; x++ {
					rowE += ve[o][x]
					rowT += vt[o][x]
				}
				if rowE != oursWant[o] || rowT != oursWant[o] {
					t.Logf("size %d: ours marginal %d: %d/%d want %d", size, o, rowE, rowT, oursWant[o])
					return false
				}
			}
			// Eggers' and Torrellas' marginals.
			eggWant := [3]uint64{eggers.Cold, eggers.True, eggers.False}
			torrWant := [3]uint64{torr.Cold, torr.True, torr.False}
			for x := 0; x < 3; x++ {
				var colE, colT uint64
				for o := 0; o < 3; o++ {
					colE += ve[o][x]
					colT += vt[o][x]
				}
				if colE != eggWant[x] || colT != torrWant[x] {
					t.Logf("size %d: scheme marginal %d: %d/%d want %d/%d",
						size, x, colE, colT, eggWant[x], torrWant[x])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The structural theorems as matrix cells: cold definitions agree between
// ours and Eggers (no off-diagonal mass in the cold row/column), and every
// Eggers TSM is ours-PTS (the cell [COLD or FALSE][TRUE] is empty).
func TestCrossTheoremCells(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 4, 500, 32)
		g := mem.MustGeometry(16)
		matrix, _, err := Cross(tr.Reader(), g)
		if err != nil {
			return false
		}
		ve := matrix.OursVsEggers()
		o, e := int(SharingCold), int(SharingCold)
		// Cold is the same definition: a miss is cold for ours iff cold
		// for Eggers.
		if ve[o][int(SharingTrue)] != 0 || ve[o][int(SharingFalse)] != 0 {
			return false
		}
		if ve[int(SharingTrue)][e] != 0 || ve[int(SharingFalse)][e] != 0 {
			return false
		}
		// Eggers' TSM implies ours PTS.
		if ve[int(SharingFalse)][int(SharingTrue)] != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Figure 3 as a joint verdict: the single PTS miss is FSM under both
// earlier schemes — the exact cell the paper's §3.1 "prefetching effects"
// remark is about.
func TestCrossFigure3Cell(t *testing.T) {
	tr := trace.New(2,
		trace.S(0, 1), trace.L(1, 0), trace.L(0, 1), trace.L(0, 0),
		trace.S(1, 0), trace.L(0, 1), trace.L(0, 0),
	)
	matrix, _, err := Cross(tr.Reader(), mem.MustGeometry(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := matrix.Matrix[SharingTrue][SharingFalse][SharingFalse]; got != 1 {
		t.Errorf("TRUE/FSM/FSM cell = %d, want 1 (the Fig. 3 T5 miss)", got)
	}
	if matrix.Total() != 3 {
		t.Errorf("total = %d, want 3", matrix.Total())
	}
}

func TestAgreement(t *testing.T) {
	var pair [3][3]uint64
	pair[0][0] = 6
	pair[1][1] = 3
	pair[1][2] = 1
	if got := Agreement(pair); got != 0.9 {
		t.Errorf("Agreement = %v, want 0.9", got)
	}
	if got := Agreement([3][3]uint64{}); got != 1 {
		t.Errorf("empty Agreement = %v, want 1", got)
	}
}

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{
		ClassPC: "PC", ClassCTS: "CTS", ClassCFS: "CFS",
		ClassPTS: "PTS", ClassPFS: "PFS", ClassRepl: "REPL",
		Class(99): "Class(99)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	shar := map[SharingClass]string{
		SharingCold: "COLD", SharingTrue: "TRUE", SharingFalse: "FALSE",
		SharingClass(9): "SharingClass(9)",
	}
	for s, want := range shar {
		if s.String() != want {
			t.Errorf("SharingClass %d = %q, want %q", s, s.String(), want)
		}
	}
	if ClassPC.Sharing() != SharingCold || ClassCTS.Sharing() != SharingCold ||
		ClassPTS.Sharing() != SharingTrue || ClassPFS.Sharing() != SharingFalse {
		t.Error("Class.Sharing mapping wrong")
	}
}
