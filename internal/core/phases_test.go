package core

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestPhaseSeriesSumsToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := trace.New(4)
	for i := 0; i < 1200; i++ {
		p := rng.Intn(4)
		if rng.Intn(3) == 0 {
			tr.Append(trace.S(p, mem.Addr(rng.Intn(64))))
		} else {
			tr.Append(trace.L(p, mem.Addr(rng.Intn(64))))
		}
		if i%100 == 99 {
			tr.Append(trace.P())
		}
	}
	g := mem.MustGeometry(16)
	series := NewPhaseSeries(4, g)
	for _, r := range tr.Refs {
		series.Ref(r)
	}
	points, tail := series.Finish()
	if len(points) != 12 {
		t.Fatalf("got %d phases, want 12", len(points))
	}
	var agg Counts
	var refs uint64
	for _, p := range points {
		agg = agg.Add(p.Counts)
		refs += p.DataRefs
	}
	agg = agg.Add(tail.Counts)
	refs += tail.DataRefs

	whole, wholeRefs, err := Classify(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	if agg != whole || refs != wholeRefs {
		t.Errorf("series sums %+v/%d, whole-trace %+v/%d", agg, refs, whole, wholeRefs)
	}
}

func TestPhaseSeriesColdFrontLoaded(t *testing.T) {
	// Two identical phases: all cold misses must close by the end; the
	// first phase's CLASSIFIED verdicts may lag (closures happen on
	// invalidation), but no new cold verdicts may appear once every
	// (proc, block) pair has been re-invalidated.
	tr := trace.New(2)
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 32; i++ {
			tr.Append(trace.S(0, mem.Addr(i)), trace.S(1, mem.Addr(i)))
		}
		tr.Append(trace.P())
	}
	series := NewPhaseSeries(2, mem.MustGeometry(8))
	for _, r := range tr.Refs {
		series.Ref(r)
	}
	points, tail := series.Finish()
	cold := func(p PhasePoint) uint64 { return p.Counts.Cold() }
	if cold(points[2]) != 0 {
		t.Errorf("cold misses classified in the last phase: %+v", points[2])
	}
	total := cold(points[0]) + cold(points[1]) + cold(points[2]) + tail.Counts.Cold()
	if total != 32 { // 16 blocks x 2 processors
		t.Errorf("total cold = %d, want 32", total)
	}
}

func TestPhasePointMissRate(t *testing.T) {
	p := PhasePoint{Counts: Counts{PC: 5}, DataRefs: 200}
	if p.MissRate() != 2.5 {
		t.Errorf("MissRate = %v", p.MissRate())
	}
}

func TestPhaseSeriesNoMarkers(t *testing.T) {
	series := NewPhaseSeries(1, mem.MustGeometry(8))
	series.Ref(trace.L(0, 0))
	points, tail := series.Finish()
	if len(points) != 0 {
		t.Errorf("no markers should yield no phases, got %d", len(points))
	}
	if tail.Counts.Total() != 1 || tail.DataRefs != 1 {
		t.Errorf("tail = %+v", tail)
	}
}
