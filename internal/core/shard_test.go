package core

// The shard-invariance differential suite for the classifiers: the
// block-sharded pipeline must produce byte-identical counts to the serial
// classifier for every shard count, every classification scheme, and every
// partition of the block space — the property that makes the sharded
// pipeline a drop-in replacement for the hot path.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

// shardCounts is the shard-count grid the differential suite sweeps,
// bracketing the interesting cases: serial (1), tiny pools, a typical pool
// (8), and more shards than blocks in most of the random traces (64).
var shardCounts = []int{1, 2, 3, 8, 64}

// quickConf bounds a differential property's iteration count so the full
// {scheme x shards x geometry} sweep stays fast.
func quickConf(n int) *quick.Config { return &quick.Config{MaxCount: n} }

// randomMixedTrace interleaves contended data references with sync and
// phase references so the broadcast path of the demux is exercised.
func randomMixedTrace(rng *rand.Rand, procs, n, addrRange int) *trace.Trace {
	tr := trace.New(procs)
	for i := 0; i < n; i++ {
		p := rng.Intn(procs)
		switch rng.Intn(12) {
		case 0:
			tr.Append(trace.A(p, mem.Addr(addrRange+rng.Intn(4))))
		case 1:
			tr.Append(trace.R(p, mem.Addr(addrRange+rng.Intn(4))))
		case 2:
			tr.Append(trace.P())
		case 3, 4, 5:
			tr.Append(trace.S(p, mem.Addr(rng.Intn(addrRange))))
		default:
			tr.Append(trace.L(p, mem.Addr(rng.Intn(addrRange))))
		}
	}
	return tr
}

func shardGeometries() []mem.Geometry {
	return []mem.Geometry{
		mem.MustGeometry(4),
		mem.MustGeometry(16),
		mem.MustGeometry(64),
	}
}

// TestShardedClassifyMatchesSerial is the headline differential property:
// the Appendix A classification sharded N ways equals the serial run in
// every one of the five classes, for N in {1, 2, 3, 8, 64}.
func TestShardedClassifyMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 6, 800, 64)
		for _, g := range shardGeometries() {
			want, wantRefs, err := Classify(tr.Reader(), g)
			if err != nil {
				t.Log(err)
				return false
			}
			for _, n := range shardCounts {
				got, refs, err := ShardedClassify(tr.Reader(), g, n)
				if err != nil {
					t.Log(err)
					return false
				}
				if got != want || refs != wantRefs {
					t.Logf("%v shards=%d: got %+v (%d refs), want %+v (%d refs)",
						g, n, got, refs, want, wantRefs)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickConf(12)); err != nil {
		t.Fatal(err)
	}
}

// TestShardedEggersMatchesSerial checks Eggers' scheme shard-invariant.
func TestShardedEggersMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 6, 800, 64)
		for _, g := range shardGeometries() {
			want, wantRefs, err := ClassifyEggers(tr.Reader(), g)
			if err != nil {
				t.Log(err)
				return false
			}
			for _, n := range shardCounts {
				got, refs, err := ShardedClassifyEggers(tr.Reader(), g, n)
				if err != nil {
					t.Log(err)
					return false
				}
				if got != want || refs != wantRefs {
					t.Logf("%v shards=%d: got %+v, want %+v", g, n, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickConf(12)); err != nil {
		t.Fatal(err)
	}
}

// TestShardedTorrellasMatchesSerial checks Torrellas' scheme, whose
// word-level state must shard with the blocks containing the words.
func TestShardedTorrellasMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 6, 800, 64)
		for _, g := range shardGeometries() {
			want, wantRefs, err := ClassifyTorrellas(tr.Reader(), g)
			if err != nil {
				t.Log(err)
				return false
			}
			for _, n := range shardCounts {
				got, refs, err := ShardedClassifyTorrellas(tr.Reader(), g, n)
				if err != nil {
					t.Log(err)
					return false
				}
				if got != want || refs != wantRefs {
					t.Logf("%v shards=%d: got %+v, want %+v", g, n, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickConf(12)); err != nil {
		t.Fatal(err)
	}
}

// allClassesTrace produces every one of the five miss classes at B=8
// (2 words per block): the differential properties above then cannot pass
// vacuously on traces missing a class.
func allClassesTrace() *trace.Trace {
	return trace.New(3,
		// P0 loads block 0 untouched: PC when the lifetime closes.
		trace.L(0, 0),
		// P1 stores word 1 of block 0, invalidating P0 (classifies P0's
		// PC), then P0 misses again and reads the new value: PTS.
		trace.S(1, 1),
		trace.L(0, 1),
		// P1 stores word 0; P0's copy dies again; P0 refetches but only
		// touches word 1, which P1 did not redefine: PFS.
		trace.S(1, 0),
		trace.L(0, 1),
		trace.S(1, 0),
		// P2's first miss lands on a modified block and reads a
		// communicated word: CTS.
		trace.L(2, 0),
		// Block 2 (words 4-5): P1 modifies it first, then P2's cold miss
		// touches only the word P1 never wrote: CFS.
		trace.S(1, 4),
		trace.L(2, 5),
	)
}

// TestShardedCoversAllFiveClasses pins that the all-classes trace indeed
// produces PC, CTS, CFS, PTS and PFS, and that every shard count
// reproduces the same nonzero split.
func TestShardedCoversAllFiveClasses(t *testing.T) {
	g := mem.MustGeometry(8)
	tr := allClassesTrace()
	want, refs, err := Classify(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	if want.PC == 0 || want.CTS == 0 || want.CFS == 0 || want.PTS == 0 || want.PFS == 0 {
		t.Fatalf("trace does not cover all five classes: %+v", want)
	}
	for _, n := range shardCounts {
		got, gotRefs, err := ShardedClassify(tr.Reader(), g, n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || gotRefs != refs {
			t.Errorf("shards=%d: got %+v, want %+v", n, got, want)
		}
	}
}

// TestArbitraryBlockPartitionSumsToWhole is the merge-soundness property in
// its strongest form: not just the canonical block%N partition but ANY
// partition of the block space — here a seeded random assignment — must sum
// to the whole-trace counts.
func TestArbitraryBlockPartitionSumsToWhole(t *testing.T) {
	f := func(seed int64, keySeed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 5, 600, 48)
		g := mem.MustGeometry(16)
		want, wantRefs, err := Classify(tr.Reader(), g)
		if err != nil {
			t.Log(err)
			return false
		}
		const n = 7
		// A random but deterministic block->shard assignment.
		key := func(r trace.Ref) int {
			h := uint64(g.BlockOf(r.Addr))*0x9e3779b97f4a7c15 + uint64(keySeed)
			return int((h >> 33) % n)
		}
		procs := tr.Procs
		type res struct {
			counts Counts
			refs   uint64
		}
		got, err := RunSharded(tr.Reader(), n, key,
			func(int) *Classifier { return NewClassifier(procs, g) },
			func(c *Classifier) res { return res{c.Finish(), c.DataRefs()} },
			func(a, b res) res { return res{a.counts.Add(b.counts), a.refs + b.refs} })
		if err != nil {
			t.Log(err)
			return false
		}
		if got.counts != want || got.refs != wantRefs {
			t.Logf("random partition: got %+v (%d refs), want %+v (%d refs)",
				got.counts, got.refs, want, wantRefs)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickConf(20)); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMergeInvariants checks the paper's accounting identities on
// the MERGED counts — essential = cold + PTS, essential <= total — and
// that the demux conserves the data-reference denominator exactly.
func TestShardedMergeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 6, 700, 56)
		g := mem.MustGeometry(32)
		for _, n := range shardCounts {
			counts, refs, err := ShardedClassify(tr.Reader(), g, n)
			if err != nil {
				t.Log(err)
				return false
			}
			if counts.Essential() != counts.Cold()+counts.PTS {
				t.Logf("shards=%d: essential %d != cold %d + PTS %d",
					n, counts.Essential(), counts.Cold(), counts.PTS)
				return false
			}
			if counts.Essential() > counts.Total() {
				t.Logf("shards=%d: essential %d > total %d", n, counts.Essential(), counts.Total())
				return false
			}
			if refs != tr.DataRefs() {
				t.Logf("shards=%d: demux lost data refs: %d of %d", n, refs, tr.DataRefs())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConf(15)); err != nil {
		t.Fatal(err)
	}
}
