package core

// Gold tests encoding the paper's worked examples (Figs. 1-4). Each figure
// is a short two-processor reference sequence whose classification the paper
// gives explicitly; these tests pin our three classifiers to those verdicts.
//
// The paper labels processors P1 and P2; here they are procs 0 and 1.
// Words 0 and 1 share one block when the block size is 8 bytes (2 words).

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

var (
	b4 = mem.MustGeometry(4) // one-word blocks ("B=1 word" in Fig. 1)
	b8 = mem.MustGeometry(8) // two-word blocks
)

func classifyAll(t *testing.T, tr *trace.Trace, g mem.Geometry) (Counts, SharingCounts, SharingCounts) {
	t.Helper()
	ours, _, err := Classify(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	eggers, _, err := ClassifyEggers(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	torr, _, err := ClassifyTorrellas(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	return ours, eggers, torr
}

// Figure 1: effect of the block size on the number of PTS misses.
//
//	T0: P1 Store 0     B=1 word: PC    B=2 words: PC
//	T1: P2 Load 0                CTS              CTS
//	T2: P1 Store 1               PC               -   (upgrade, INV to P2)
//	T3: P2 Load 1                CTS              PTS
//
// Going from one-word to two-word blocks, essential misses drop 4 -> 3,
// cold misses drop 4 -> 2, and PTS misses rise 0 -> 1.
func TestFigure1(t *testing.T) {
	tr := trace.New(2,
		trace.S(0, 0),
		trace.L(1, 0),
		trace.S(0, 1),
		trace.L(1, 1),
	)
	ours1, _, _ := classifyAll(t, tr, b4)
	if want := (Counts{PC: 2, CTS: 2}); ours1 != want {
		t.Errorf("B=4: got %+v, want %+v", ours1, want)
	}
	ours2, _, _ := classifyAll(t, tr, b8)
	if want := (Counts{PC: 1, CTS: 1, PTS: 1}); ours2 != want {
		t.Errorf("B=8: got %+v, want %+v", ours2, want)
	}
	if ours1.Essential() != 4 || ours2.Essential() != 3 {
		t.Errorf("essential misses: B=4 %d (want 4), B=8 %d (want 3)",
			ours1.Essential(), ours2.Essential())
	}
	if ours1.Cold() != 4 || ours2.Cold() != 2 {
		t.Errorf("cold misses: B=4 %d (want 4), B=8 %d (want 2)",
			ours1.Cold(), ours2.Cold())
	}
}

// Figure 2: effect of trace interleaving on the number of essential misses.
// Two legal interleavings of the same accesses; delaying P1's second store
// past P2's first load creates an extra PTS miss.
func TestFigure2(t *testing.T) {
	early := trace.New(2, // P1's stores back to back
		trace.S(0, 0),
		trace.S(0, 1),
		trace.L(1, 0),
		trace.L(1, 1),
	)
	late := trace.New(2, // second store delayed after P2's load
		trace.S(0, 0),
		trace.L(1, 0),
		trace.S(0, 1),
		trace.L(1, 1),
	)
	oursEarly, _, _ := classifyAll(t, early, b8)
	oursLate, _, _ := classifyAll(t, late, b8)
	if want := (Counts{PC: 1, CTS: 1}); oursEarly != want {
		t.Errorf("early interleaving: got %+v, want %+v", oursEarly, want)
	}
	if want := (Counts{PC: 1, CTS: 1, PTS: 1}); oursLate != want {
		t.Errorf("late interleaving: got %+v, want %+v", oursLate, want)
	}
	if oursLate.Essential() != oursEarly.Essential()+1 {
		t.Errorf("delaying the store should create exactly one extra essential miss: %d vs %d",
			oursLate.Essential(), oursEarly.Essential())
	}
}

// Figure 3: basic shortcomings of the earlier schemes. P1's miss at T5
// brings the value defined at T4 and accessed at T6, yet both earlier
// schemes call it a false sharing miss; ours calls it PTS.
//
//	            P1        P2      Torrellas  Eggers  Ours
//	T0:   Store 1                 CM         CM      PC
//	T1:             Load 0        CM         CM      CFS
//	T2:   Load 1                  -          -       -
//	T3:   Load 0                  -          -       -
//	T4:   INV       Store 0       -          -       -
//	T5:   Load 1                  FSM        FSM     PTS
//	T6:   Load 0                  -          -       -
//
// P1 defines word 1 itself at T0 and re-reads it at T2, so Torrellas sees
// word 1 as touched and word-valid at T5 (FSM rather than cold); P2's cold
// miss at T1 lands on a modified block whose new value P2 never reads (CFS).
func TestFigure3(t *testing.T) {
	tr := trace.New(2,
		trace.S(0, 1), // T0
		trace.L(1, 0), // T1
		trace.L(0, 1), // T2
		trace.L(0, 0), // T3
		trace.S(1, 0), // T4: invalidates proc 0
		trace.L(0, 1), // T5
		trace.L(0, 0), // T6
	)
	ours, eggers, torr := classifyAll(t, tr, b8)
	if want := (Counts{PC: 1, CFS: 1, PTS: 1}); ours != want {
		t.Errorf("ours: got %+v, want %+v", ours, want)
	}
	if want := (SharingCounts{Cold: 2, False: 1}); eggers != want {
		t.Errorf("eggers: got %+v, want %+v", eggers, want)
	}
	if want := (SharingCounts{Cold: 2, False: 1}); torr != want {
		t.Errorf("torrellas: got %+v, want %+v", torr, want)
	}
}

// Figure 4: differences between Eggers' and Torrellas' classifications.
// Torrellas counts more true sharing than Eggers and counts invalidation
// misses at first-touched words as cold.
//
//	            P1        P2      Torrellas  Eggers  Ours
//	T0:   Load 1                  CM         CM      PC
//	T1:             Load 0        CM         CM      PC
//	T2:   INV       Store 1       -          -       -
//	T3:   Load 0                  CM         FSM     PFS
//	T4:   INV       Store 0       -          -       -
//	T5:   Load 1                  TSM        FSM     PTS
//	T6:   Load 0                  -          -       -
//
// Note on T3 under our scheme: during the lifetime opened at T3 (closed by
// the invalidation at T4) P1 only touches word 0, which no other processor
// has modified, so the T3 miss communicates nothing and is useless (PFS) by
// the paper's §2 definition.
func TestFigure4(t *testing.T) {
	tr := trace.New(2,
		trace.L(0, 1), // T0
		trace.L(1, 0), // T1
		trace.S(1, 1), // T2: invalidates proc 0
		trace.L(0, 0), // T3
		trace.S(1, 0), // T4: invalidates proc 0
		trace.L(0, 1), // T5
		trace.L(0, 0), // T6
	)
	ours, eggers, torr := classifyAll(t, tr, b8)
	if want := (Counts{PC: 2, PFS: 1, PTS: 1}); ours != want {
		t.Errorf("ours: got %+v, want %+v", ours, want)
	}
	if want := (SharingCounts{Cold: 2, False: 2}); eggers != want {
		t.Errorf("eggers: got %+v, want %+v", eggers, want)
	}
	if want := (SharingCounts{Cold: 3, True: 1}); torr != want {
		t.Errorf("torrellas: got %+v, want %+v", torr, want)
	}
}

// The write-action subtlety of §2: "an access can be a load or a store".
// A store to a word another processor modified makes the miss essential.
func TestStoreTriggersEssentialMiss(t *testing.T) {
	tr := trace.New(2,
		trace.S(0, 0), // P1 cold (PC)
		trace.S(1, 0), // P2 cold; stores to the word P1 defined -> CTS
		trace.S(0, 0), // P1 misses again; stores to the word P2 defined -> PTS
	)
	ours, _, _ := classifyAll(t, tr, b4)
	if want := (Counts{PC: 1, CTS: 1, PTS: 1}); ours != want {
		t.Errorf("got %+v, want %+v", ours, want)
	}
}

// After an essential miss communicates the block's modified values, a
// second invalidation-free access to another previously-modified word must
// not create a second essential lifetime (the C flags were cleared).
func TestCommunicationFlagsClearedOnEssentialMiss(t *testing.T) {
	tr := trace.New(2,
		trace.S(0, 0), // P1 defines words 0 and 1
		trace.S(0, 1),
		trace.L(1, 0), // P2 cold miss, accesses word 0 -> CTS, clears C for word 1 too
		trace.L(1, 1), // hit; word 1 was communicated by the CTS miss
		trace.S(0, 0), // invalidates P2 (P2's lifetime classified CTS)
		trace.L(1, 1), // P2 misses; word 1's C flag must not still be set
	)
	ours, _, _ := classifyAll(t, tr, b8)
	// P2's second miss touches word 1 whose value it already received at
	// the CTS miss; only word 0 is newly defined, and P2 never reads it,
	// so the miss is useless.
	if want := (Counts{PC: 1, CTS: 1, PFS: 1}); ours != want {
		t.Errorf("got %+v, want %+v", ours, want)
	}
}
