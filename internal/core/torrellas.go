package core

import (
	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Torrellas implements the classification of Torrellas, Lam and Hennessy
// (§3.1): a miss is cold when the accessed *word* is referenced for the
// first time by the processor; a non-cold miss is true sharing when the
// access would also miss in a system with a block size of one word
// (simulated alongside); every other miss is false sharing.
//
// The paper points out two weaknesses this implementation preserves
// faithfully: the word-level cold definition misclassifies many sharing
// misses as cold (Table 1), and the verdict depends on which word of the
// block the missing access happens to touch (Fig. 3).
type Torrellas struct {
	geom     mem.Geometry
	procs    int
	blocks   *dense.Map[uint64] // block-level presence (block-size system)
	words    *dense.Map[torrellasWord]
	counts   SharingCounts
	dataRefs uint64

	// OnClassify, if set, is called at every miss with its verdict
	// (Torrellas' scheme decides at miss time).
	OnClassify func(p int, b mem.Block, class SharingClass)
}

type torrellasWord struct {
	touched uint64 // procs that have referenced this word
	valid   uint64 // procs with a valid copy in the one-word-block system
}

// NewTorrellas returns a Torrellas classifier.
func NewTorrellas(procs int, g mem.Geometry) *Torrellas {
	if procs <= 0 || procs > MaxProcs {
		panic("core: processor count out of range")
	}
	return &Torrellas{
		geom:   g,
		procs:  procs,
		blocks: dense.NewMap[uint64](0),
		words:  dense.NewMap[torrellasWord](0),
	}
}

// Ref implements trace.Consumer.
func (t *Torrellas) Ref(r trace.Ref) {
	switch r.Kind {
	case trace.Load:
		t.access(int(r.Proc), r.Addr, false)
	case trace.Store:
		t.access(int(r.Proc), r.Addr, true)
	}
}

// RefBatch implements trace.BatchConsumer.
func (t *Torrellas) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		t.Ref(r)
	}
}

func (t *Torrellas) access(p int, a mem.Addr, store bool) {
	t.dataRefs++
	b := t.geom.BlockOf(a)
	bit := uint64(1) << uint(p)
	w, _ := t.words.GetOrPut(uint64(a))
	present, _ := t.blocks.GetOrPut(uint64(b))

	if *present&bit == 0 { // miss in the block-size system
		var class SharingClass
		switch {
		case w.touched&bit == 0:
			class = SharingCold
			t.counts.Cold++
		case w.valid&bit == 0: // also misses at one-word blocks
			class = SharingTrue
			t.counts.True++
		default:
			class = SharingFalse
			t.counts.False++
		}
		if t.OnClassify != nil {
			t.OnClassify(p, b, class)
		}
		*present |= bit
	}
	w.touched |= bit

	// Maintain both systems' write-invalidate state.
	if store {
		*present = bit // invalidate other block copies
		w.valid = bit  // invalidate other word copies
	} else {
		w.valid |= bit
	}
}

// DataRefs returns the number of data references classified.
func (t *Torrellas) DataRefs() uint64 { return t.dataRefs }

// Finish returns the totals; the verdicts are decided at miss time.
func (t *Torrellas) Finish() SharingCounts {
	mTorrellasRefs.Add(t.dataRefs)
	return t.counts
}

// ClassifyTorrellas runs Torrellas' classification over a trace stream.
func ClassifyTorrellas(r trace.Reader, g mem.Geometry) (SharingCounts, uint64, error) {
	c := NewTorrellas(r.NumProcs(), g)
	if err := trace.Drive(r, c); err != nil {
		return SharingCounts{}, 0, err
	}
	return c.Finish(), c.DataRefs(), nil
}
