package core

import (
	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Eggers implements the classification of Eggers and Jeremiassen (§3.2):
// the first reference to a block by a processor is a cold miss; every later
// miss is an invalidation miss, classified as true sharing iff the word
// accessed *on the miss* was modified since — and including — the store
// whose invalidation removed the processor's copy, and as false sharing
// otherwise.
//
// The paper shows this scheme exaggerates false sharing because it ignores
// new values accessed later in the lifetime (Fig. 4, Table 1). Its cold
// count is identical to the paper's classification by construction.
type Eggers struct {
	geom     mem.Geometry
	procs    int
	blocks   *dense.Map[eggersBlock]
	slab     *dense.Arena[uint64] // one cell per block: modSince, words long
	counts   SharingCounts
	dataRefs uint64

	// OnClassify, if set, is called at every miss with its verdict
	// (Eggers' scheme decides at miss time).
	OnClassify func(p int, b mem.Block, class SharingClass)
}

type eggersBlock struct {
	present uint64 // procs with a valid copy
	touched uint64 // procs that have referenced the block (cold detection)
	// mod is the arena handle of modSince[w]: for every processor q that
	// currently has no valid copy, whether word w was modified since (and
	// including) the store that invalidated q's copy.
	mod uint32
}

// NewEggers returns an Eggers classifier.
func NewEggers(procs int, g mem.Geometry) *Eggers {
	if procs <= 0 || procs > MaxProcs {
		panic("core: processor count out of range")
	}
	return &Eggers{
		geom:   g,
		procs:  procs,
		blocks: dense.NewMap[eggersBlock](0),
		slab:   dense.NewArena[uint64](g.WordsPerBlock()),
	}
}

// Ref implements trace.Consumer.
func (e *Eggers) Ref(r trace.Ref) {
	switch r.Kind {
	case trace.Load:
		e.access(int(r.Proc), r.Addr, false)
	case trace.Store:
		e.access(int(r.Proc), r.Addr, true)
	}
}

// RefBatch implements trace.BatchConsumer.
func (e *Eggers) RefBatch(refs []trace.Ref) {
	for _, r := range refs {
		e.Ref(r)
	}
}

func (e *Eggers) access(p int, a mem.Addr, store bool) {
	e.dataRefs++
	b := e.geom.BlockOf(a)
	eb, existed := e.blocks.GetOrPut(uint64(b))
	if !existed {
		eb.mod = e.slab.Alloc()
	}
	modSince := e.slab.Slice(eb.mod)
	bit := uint64(1) << uint(p)
	off := e.geom.OffsetOf(a)

	if eb.present&bit == 0 { // miss
		var class SharingClass
		switch {
		case eb.touched&bit == 0:
			class = SharingCold
			e.counts.Cold++
		case modSince[off]&bit != 0:
			class = SharingTrue
			e.counts.True++
		default:
			class = SharingFalse
			e.counts.False++
		}
		if e.OnClassify != nil {
			e.OnClassify(p, b, class)
		}
		eb.present |= bit
		// The new copy is current: nothing is "modified since the
		// invalidation" anymore for p.
		for i := range modSince {
			modSince[i] &^= bit
		}
	}
	eb.touched |= bit

	if !store {
		return
	}
	// The store invalidates every other copy; for each other processor
	// the set of words modified since its invalidation restarts at (and
	// includes) this word. Processors already without a copy accumulate
	// this word too.
	others := othersMask(e.procs, p)
	invalidated := eb.present & others
	if invalidated != 0 {
		for i := range modSince {
			modSince[i] &^= invalidated
		}
	}
	eb.present = bit
	modSince[off] |= others
}

// DataRefs returns the number of data references classified.
func (e *Eggers) DataRefs() uint64 { return e.dataRefs }

// Finish returns the totals. Unlike the paper's scheme, Eggers'
// classification is decided at miss time, so there is nothing to flush.
func (e *Eggers) Finish() SharingCounts {
	mEggersRefs.Add(e.dataRefs)
	return e.counts
}

// ClassifyEggers runs Eggers' classification over a trace stream.
func ClassifyEggers(r trace.Reader, g mem.Geometry) (SharingCounts, uint64, error) {
	c := NewEggers(r.NumProcs(), g)
	if err := trace.Drive(r, c); err != nil {
		return SharingCounts{}, 0, err
	}
	return c.Finish(), c.DataRefs(), nil
}
