package core

import (
	"repro/internal/obs"
)

// Per-scheme classified-reference counters, bumped once per classifier
// Finish (one atomic add per run, nothing on the per-reference path).
// Because every data reference lands on exactly one shard of a sharded
// run, the per-scheme totals are invariant across -j and -shards — they
// are the "refs" leg of the metric-invariance differential test.
var (
	mOursRefs      = obs.Default.Counter(obs.NameOursRefs)
	mEggersRefs    = obs.Default.Counter(obs.NameEggersRefs)
	mTorrellasRefs = obs.Default.Counter(obs.NameTorrellasRefs)
)
