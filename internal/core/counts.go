// Package core implements the paper's central contribution: the
// classification of multiprocessor cache misses into essential and useless
// misses, based on interprocessor communication (Dubois et al., ISCA 1993,
// §2 and Appendix A), together with the two earlier classifications it is
// compared against (Eggers' and Torrellas' schemes, §3).
//
// The classes are:
//
//   - PC  (pure cold): first miss by a processor to a block nobody had
//     modified when the miss occurred.
//   - CTS (cold + true sharing): a cold miss to a modified block whose new
//     values the processor goes on to access during the block's lifetime.
//   - CFS (cold + false sharing): a cold miss to a modified block whose new
//     values the processor never accesses during the lifetime.
//   - PTS (pure true sharing): a non-cold miss that communicates at least
//     one value defined by another processor since this processor's last
//     essential miss to the block.
//   - PFS (pure false sharing): every other miss. These are the useless
//     misses: the execution would remain correct if they (or the
//     invalidations leading to them) never happened.
//
// Essential misses = cold + PTS; they are the minimum miss count for the
// trace at the given block size.
//
// All classifiers assume infinite caches and a write-invalidate protocol,
// like the paper. They support at most 64 processors (the paper uses 16);
// processor sets are kept in single-word bitmasks.
package core

// MaxProcs is the largest processor count the classifiers support.
// Processor sets are stored in 64-bit masks.
const MaxProcs = 64

// Counts holds per-class miss counts under the paper's classification.
// Repl is only produced by the finite-cache extension (§8: "it can easily
// be extended to finite caches by introducing replacement misses. A
// replacement miss is an essential miss"); infinite-cache runs leave it 0.
type Counts struct {
	PC   uint64 // pure cold
	CTS  uint64 // cold and true sharing
	CFS  uint64 // cold and false sharing
	PTS  uint64 // pure true sharing
	PFS  uint64 // pure false sharing (useless)
	Repl uint64 // replacement misses (finite caches only)
}

// Cold returns all cold misses (PC+CTS+CFS); this equals Eggers' cold count.
func (c Counts) Cold() uint64 { return c.PC + c.CTS + c.CFS }

// Essential returns the essential misses: cold, pure true sharing, and
// (with finite caches) replacement misses. This is the minimum number of
// misses for the trace (the MIN protocol's miss count when caches are
// infinite).
func (c Counts) Essential() uint64 { return c.Cold() + c.PTS + c.Repl }

// Useless returns the useless misses (PFS).
func (c Counts) Useless() uint64 { return c.PFS }

// Total returns all misses.
func (c Counts) Total() uint64 { return c.Cold() + c.PTS + c.PFS + c.Repl }

// Add returns the element-wise sum of two Counts.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		PC:   c.PC + o.PC,
		CTS:  c.CTS + o.CTS,
		CFS:  c.CFS + o.CFS,
		PTS:  c.PTS + o.PTS,
		PFS:  c.PFS + o.PFS,
		Repl: c.Repl + o.Repl,
	}
}

// Sharing collapses the five classes into the three-way cold/true/false
// split used when comparing against the earlier classifications (Table 1).
func (c Counts) Sharing() SharingCounts {
	return SharingCounts{Cold: c.Cold(), True: c.PTS, False: c.PFS}
}

// SharingCounts is the three-way split reported by Eggers' and Torrellas'
// classifications: cold misses, true sharing misses, false sharing misses.
type SharingCounts struct {
	Cold  uint64
	True  uint64
	False uint64
}

// Total returns all misses.
func (s SharingCounts) Total() uint64 { return s.Cold + s.True + s.False }

// Add returns the element-wise sum of two SharingCounts.
func (s SharingCounts) Add(o SharingCounts) SharingCounts {
	return SharingCounts{Cold: s.Cold + o.Cold, True: s.True + o.True, False: s.False + o.False}
}

// Rate returns n as a percentage of refs, the form used by the paper's
// figures (miss rate over data references). It returns 0 when refs is 0.
func Rate(n, refs uint64) float64 {
	if refs == 0 {
		return 0
	}
	return 100 * float64(n) / float64(refs)
}

// othersMask returns the set of all processors except p, for procs
// processors total.
func othersMask(procs, p int) uint64 {
	return allMask(procs) &^ (1 << uint(p))
}

// allMask returns the set of all processors.
func allMask(procs int) uint64 {
	if procs >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(procs) - 1
}
