package core_test

// Benchmarks backing the fused sweep's headline claim: one fused pass over
// a trace, feeding the whole Fig. 5 block grid, costs on the order of a
// single cell's replay — not one replay per block size. The measured run is
// recorded in results/fused_sweep_bench.txt.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

var benchTrace = sync.OnceValues(func() (*trace.Trace, error) {
	w, err := workload.Get("LU32")
	if err != nil {
		return nil, err
	}
	return trace.Collect(w.Reader())
})

func fig5Geometries(b *testing.B) []mem.Geometry {
	b.Helper()
	geos := make([]mem.Geometry, len(experiment.Fig5Blocks))
	for i, blk := range experiment.Fig5Blocks {
		geos[i] = mem.MustGeometry(blk)
	}
	return geos
}

// BenchmarkFig5SingleCell is the yardstick: one classifier replay at one
// block size — what every cell of the per-cell Fig. 5 sweep costs.
func BenchmarkFig5SingleCell(b *testing.B) {
	tr, err := benchTrace()
	if err != nil {
		b.Fatal(err)
	}
	g := mem.MustGeometry(64)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Classify(tr.Reader(), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5SingleCellFinest is the grid's costliest cell: the finest
// block size is word-granular, so its replay touches the most state.
func BenchmarkFig5SingleCellFinest(b *testing.B) {
	tr, err := benchTrace()
	if err != nil {
		b.Fatal(err)
	}
	g := mem.MustGeometry(experiment.Fig5Blocks[0])
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Classify(tr.Reader(), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5FusedSweep is the whole figure in one pass: all ten block
// sizes of the paper's grid off a single replay. The acceptance target is
// wall time within ~2x of BenchmarkFig5SingleCell.
func BenchmarkFig5FusedSweep(b *testing.B) {
	tr, err := benchTrace()
	if err != nil {
		b.Fatal(err)
	}
	geos := fig5Geometries(b)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.FusedClassify(tr.Reader(), geos); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5PerCellSweep is the old cost of the figure: one replay per
// block size, for the ratio the recorded results quote.
func BenchmarkFig5PerCellSweep(b *testing.B) {
	tr, err := benchTrace()
	if err != nil {
		b.Fatal(err)
	}
	geos := fig5Geometries(b)
	b.SetBytes(int64(tr.Len()) * int64(len(geos)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range geos {
			if _, _, err := core.Classify(tr.Reader(), g); err != nil {
				b.Fatal(err)
			}
		}
	}
}
