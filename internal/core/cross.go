package core

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// CrossClassifier runs the paper's classification and the two earlier
// schemes in lockstep over the same on-the-fly miss events and counts every
// miss once per *joint* verdict, quantifying exactly where the schemes
// disagree. §3 argues the disagreements qualitatively (Eggers misses the
// values communicated after the missing access; Torrellas counts word-grain
// first touches as cold and, in their words, has unquantified "prefetching
// effects"); the joint matrix puts numbers on each case — e.g. the misses
// Torrellas calls FSM or CM that really do communicate needed values are
// the cells (ours=TRUE, torrellas=FALSE|COLD).
type CrossClassifier struct {
	ours *Classifier
	egg  *Eggers
	torr *Torrellas
	// pending[p] maps a block to the Eggers/Torrellas verdicts of p's
	// outstanding miss; ours' verdict arrives when the lifetime closes.
	pending []map[mem.Block]pendingVerdicts
	matrix  CrossCounts
}

type pendingVerdicts struct {
	eggers    SharingClass
	torrellas SharingClass
}

// CrossCounts is the joint verdict matrix: Matrix[o][e][t] counts the
// misses our scheme classifies o, Eggers' e, and Torrellas' t (all as
// three-way SharingClass values).
type CrossCounts struct {
	Matrix [3][3][3]uint64
}

// Total returns the number of misses counted.
func (c CrossCounts) Total() uint64 {
	var n uint64
	for _, e := range c.Matrix {
		for _, t := range e {
			for _, v := range t {
				n += v
			}
		}
	}
	return n
}

// OursVsEggers collapses Torrellas' axis: [ours][eggers].
func (c CrossCounts) OursVsEggers() [3][3]uint64 {
	var out [3][3]uint64
	for o := range c.Matrix {
		for e := range c.Matrix[o] {
			for _, v := range c.Matrix[o][e] {
				out[o][e] += v
			}
		}
	}
	return out
}

// OursVsTorrellas collapses Eggers' axis: [ours][torrellas].
func (c CrossCounts) OursVsTorrellas() [3][3]uint64 {
	var out [3][3]uint64
	for o := range c.Matrix {
		for e := range c.Matrix[o] {
			for t, v := range c.Matrix[o][e] {
				out[o][t] += v
			}
		}
	}
	return out
}

// Agreement returns the fraction of misses on which the named scheme agrees
// with ours (diagonal mass of the pairwise matrix).
func Agreement(pair [3][3]uint64) float64 {
	var agree, total uint64
	for o := range pair {
		for x, v := range pair[o] {
			total += v
			if o == x {
				agree += v
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}

// NewCrossClassifier returns a lockstep cross-classifier.
func NewCrossClassifier(procs int, g mem.Geometry) *CrossClassifier {
	c := &CrossClassifier{
		ours:    NewClassifier(procs, g),
		egg:     NewEggers(procs, g),
		torr:    NewTorrellas(procs, g),
		pending: make([]map[mem.Block]pendingVerdicts, procs),
	}
	for p := range c.pending {
		c.pending[p] = make(map[mem.Block]pendingVerdicts)
	}
	c.egg.OnClassify = func(p int, b mem.Block, class SharingClass) {
		pv := c.pending[p][b]
		pv.eggers = class
		c.pending[p][b] = pv
	}
	c.torr.OnClassify = func(p int, b mem.Block, class SharingClass) {
		pv := c.pending[p][b]
		pv.torrellas = class
		c.pending[p][b] = pv
	}
	c.ours.Hook(func(p int, b mem.Block, class Class) {
		pv := c.pending[p][b]
		delete(c.pending[p], b)
		c.matrix.Matrix[class.Sharing()][pv.eggers][pv.torrellas]++
	})
	return c
}

// Ref implements trace.Consumer. The earlier schemes classify at miss time
// and ours at lifetime close, so the two hook orders interleave naturally:
// for every miss, the Eggers/Torrellas verdicts are recorded before ours'
// verdict for the same miss can possibly arrive.
func (c *CrossClassifier) Ref(r trace.Ref) {
	c.egg.Ref(r)
	c.torr.Ref(r)
	c.ours.Ref(r)
}

// DataRefs returns the number of data references seen.
func (c *CrossClassifier) DataRefs() uint64 { return c.ours.DataRefs() }

// Finish closes the remaining lifetimes and returns the joint matrix along
// with each scheme's own totals.
func (c *CrossClassifier) Finish() (CrossCounts, Counts, SharingCounts, SharingCounts) {
	ours := c.ours.Finish()
	return c.matrix, ours, c.egg.Finish(), c.torr.Finish()
}

// Cross runs the cross-classification over a whole trace stream.
func Cross(r trace.Reader, g mem.Geometry) (CrossCounts, uint64, error) {
	c := NewCrossClassifier(r.NumProcs(), g)
	if err := trace.Drive(r, c); err != nil {
		return CrossCounts{}, 0, err
	}
	m, _, _, _ := c.Finish()
	return m, c.DataRefs(), nil
}
