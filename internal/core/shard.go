package core

import (
	"context"
	"errors"
	"sync"

	"repro/internal/mem"
	"repro/internal/obs/span"
	"repro/internal/trace"
)

// This file implements the consumer side of the block-sharded
// classification pipeline: a pool of per-shard consumer goroutines over a
// trace.Demux, with a deterministic merge of the per-shard results.
//
// The classifiers' and simulators' state — presence masks, lifetimes,
// communication bases, per-word definitions — is keyed entirely by
// mem.Block, and their counts are additive over any partition of the block
// space. Partitioning the data references by block therefore splits one
// consumer into independent machines whose merged counts equal the serial
// run's, bit for bit, for every shard count (the shard-invariance test
// suite and FuzzShardedEquivalence enforce this). Synchronization and
// phase references are broadcast to every shard by the demux, so
// schedule-sensitive consumers see the same synchronization points.

// RunSharded partitions the data references of r across shards consumers
// and merges their results in shard order. newConsumer(i) builds shard i's
// consumer (called before any reference flows), finish extracts a shard's
// result, and merge folds two results together (it must be associative;
// the fold is left-to-right from shard 0).
//
// With shards <= 1 the single consumer is driven inline — the exact serial
// path, no demux. The first shard error tears the demux down, the peer
// goroutines drain, and that error is returned; RunSharded never leaks the
// demux pump or a shard goroutine.
func RunSharded[C trace.Consumer, R any](
	r trace.Reader,
	shards int,
	key trace.ShardFunc,
	newConsumer func(shard int) C,
	finish func(C) R,
	merge func(R, R) R,
) (R, error) {
	return RunShardedContext(context.Background(), r, shards, key, newConsumer, finish, merge)
}

// RunShardedContext is RunSharded with a cancellation context, observed at
// batch granularity by the demux pump and every shard drive. A canceled run
// tears the pipeline down without leaking the pump or a shard goroutine and
// returns ctx.Err().
func RunShardedContext[C trace.Consumer, R any](
	ctx context.Context,
	r trace.Reader,
	shards int,
	key trace.ShardFunc,
	newConsumer func(shard int) C,
	finish func(C) R,
	merge func(R, R) R,
) (R, error) {
	if shards <= 1 {
		c := newConsumer(0)
		if err := trace.DriveContext(ctx, r, c); err != nil {
			var zero R
			return zero, err
		}
		return finish(c), nil
	}

	consumers := make([]C, shards)
	for i := range consumers {
		consumers[i] = newConsumer(i)
	}
	d := trace.NewDemuxContext(ctx, r, shards, key)
	defer d.Close()

	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each shard consumer gets its own span track (single-writer),
			// a shard.consume span over its whole drive, and — after the
			// drive ends, so the arrow points forward in time — the
			// consumer endpoint of the demux's flow for this shard.
			tr := span.Acquiref("shard-consumer", i)
			defer span.Release(tr)
			defer tr.Begin(span.OpShardConsume, span.Fields{Shard: int32(i)}).End()
			sctx := span.NewContext(ctx, tr)
			err := trace.DriveContext(sctx, d.Shard(i), consumers[i])
			tr.FlowIn(d.FlowID(i))
			if err != nil {
				errs[i] = err
				// First failure cancels the demux so the peers stop
				// instead of classifying a stream that already failed.
				d.Close()
			}
		}(i)
	}
	wg.Wait()

	// Report the most meaningful error: a real failure beats the
	// ErrStopped the peers observe after the teardown, and a canceled
	// context reports ctx.Err() no matter which shard saw it first.
	if e := ctx.Err(); e != nil {
		var zero R
		return zero, e
	}
	var stopped error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, trace.ErrStopped) {
			if stopped == nil {
				stopped = err
			}
			continue
		}
		var zero R
		return zero, err
	}
	if stopped != nil {
		var zero R
		return zero, stopped
	}

	acc := finish(consumers[0])
	for i := 1; i < shards; i++ {
		acc = merge(acc, finish(consumers[i]))
	}
	return acc, nil
}

// RunShardedOpen partitions the block space across shards consumers like
// RunShardedContext, but with shard-native streams instead of a demux: each
// shard opens its own reader via open(shard) (a fresh deterministic
// generation, an independent reader over a cached trace, or a packed
// trace-store reader that skips segments with nothing for the shard) and
// filters it down to its subsequence with a trace.ShardReader. There is no
// central pump goroutine and no cross-shard channel traffic — the demux tax
// the sharded pipeline used to pay. The per-shard streams are identical to
// the demux's (the ShardReader applies the same routing and broadcast
// rules), so the merged result is bit-for-bit the same.
//
// open(i) must produce a stream that contains at least shard i's
// subsequence under key, in stream order — the full trace always
// qualifies, and openers may pre-drop references other shards own (the
// trace-store segment skip). With shards <= 1 a single reader is opened
// via open(0) and driven inline, unfiltered — the exact serial path. The
// first shard failure cancels the siblings; the error priority matches
// RunShardedContext (the caller's context error first, then the first real
// failure, then a bare cancellation/stop).
func RunShardedOpen[C trace.Consumer, R any](
	ctx context.Context,
	open func(shard int) (trace.Reader, error),
	shards int,
	key trace.ShardFunc,
	newConsumer func(shard int) C,
	finish func(C) R,
	merge func(R, R) R,
) (R, error) {
	var zero R
	if shards <= 1 {
		r, err := open(0)
		if err != nil {
			return zero, err
		}
		c := newConsumer(0)
		if err := trace.DriveContext(ctx, r, c); err != nil {
			return zero, err
		}
		return finish(c), nil
	}

	readers := make([]trace.Reader, shards)
	for i := range readers {
		r, err := open(i)
		if err != nil {
			for _, r := range readers[:i] {
				trace.CloseReader(r) //nolint:errcheck // error-path cleanup
			}
			return zero, err
		}
		readers[i] = trace.NewShardReader(r, i, key)
	}
	consumers := make([]C, shards)
	for i := range consumers {
		consumers[i] = newConsumer(i)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Shard-native consumers get the same track/span treatment as
			// the demux path (no flow arrow: there is no producer goroutine).
			tr := span.Acquiref("shard-consumer", i)
			defer span.Release(tr)
			defer tr.Begin(span.OpShardConsume, span.Fields{Shard: int32(i)}).End()
			if err := trace.DriveContext(span.NewContext(runCtx, tr), readers[i], consumers[i]); err != nil {
				errs[i] = err
				// First failure cancels the siblings so they stop instead
				// of classifying a replay that already failed.
				cancel()
			}
		}(i)
	}
	wg.Wait()

	if e := ctx.Err(); e != nil {
		return zero, e
	}
	// A shard canceled by a sibling's failure reports the derived context's
	// error; the real failure beats it, like ErrStopped under the demux.
	var induced error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, trace.ErrStopped) {
			if induced == nil {
				induced = err
			}
			continue
		}
		return zero, err
	}
	if induced != nil {
		return zero, induced
	}

	acc := finish(consumers[0])
	for i := 1; i < shards; i++ {
		acc = merge(acc, finish(consumers[i]))
	}
	return acc, nil
}

// classifyResult pairs a classification's counts with its data-reference
// denominator so both merge together.
type classifyResult[K any] struct {
	counts K
	refs   uint64
}

// ShardedClassify runs the paper's Appendix A classification with the
// block space partitioned across shards parallel classifiers. The counts
// and the data-reference count are identical to Classify's for every shard
// count; shards <= 1 is exactly Classify.
func ShardedClassify(r trace.Reader, g mem.Geometry, shards int) (Counts, uint64, error) {
	return ShardedClassifyContext(context.Background(), r, g, shards)
}

// ShardedClassifyContext is ShardedClassify with a cancellation context; see
// RunShardedContext.
func ShardedClassifyContext(ctx context.Context, r trace.Reader, g mem.Geometry, shards int) (Counts, uint64, error) {
	procs := r.NumProcs()
	res, err := RunShardedContext(ctx, r, shards, trace.BlockShard(g, shards),
		func(int) *Classifier { return NewClassifier(procs, g) },
		func(c *Classifier) classifyResult[Counts] {
			return classifyResult[Counts]{counts: c.Finish(), refs: c.DataRefs()}
		},
		func(a, b classifyResult[Counts]) classifyResult[Counts] {
			return classifyResult[Counts]{counts: a.counts.Add(b.counts), refs: a.refs + b.refs}
		})
	if err != nil {
		return Counts{}, 0, err
	}
	return res.counts, res.refs, nil
}

// ShardedClassifyEggers runs Eggers' classification block-sharded; see
// ShardedClassify.
func ShardedClassifyEggers(r trace.Reader, g mem.Geometry, shards int) (SharingCounts, uint64, error) {
	return ShardedClassifyEggersContext(context.Background(), r, g, shards)
}

// ShardedClassifyEggersContext is ShardedClassifyEggers with a cancellation
// context; see RunShardedContext.
func ShardedClassifyEggersContext(ctx context.Context, r trace.Reader, g mem.Geometry, shards int) (SharingCounts, uint64, error) {
	procs := r.NumProcs()
	res, err := RunShardedContext(ctx, r, shards, trace.BlockShard(g, shards),
		func(int) *Eggers { return NewEggers(procs, g) },
		func(c *Eggers) classifyResult[SharingCounts] {
			return classifyResult[SharingCounts]{counts: c.Finish(), refs: c.DataRefs()}
		},
		func(a, b classifyResult[SharingCounts]) classifyResult[SharingCounts] {
			return classifyResult[SharingCounts]{counts: a.counts.Add(b.counts), refs: a.refs + b.refs}
		})
	if err != nil {
		return SharingCounts{}, 0, err
	}
	return res.counts, res.refs, nil
}

// ShardedClassifyTorrellas runs Torrellas' classification block-sharded;
// see ShardedClassify. Torrellas' word-level state shards with the blocks
// containing the words.
func ShardedClassifyTorrellas(r trace.Reader, g mem.Geometry, shards int) (SharingCounts, uint64, error) {
	return ShardedClassifyTorrellasContext(context.Background(), r, g, shards)
}

// ShardedClassifyTorrellasContext is ShardedClassifyTorrellas with a
// cancellation context; see RunShardedContext.
func ShardedClassifyTorrellasContext(ctx context.Context, r trace.Reader, g mem.Geometry, shards int) (SharingCounts, uint64, error) {
	procs := r.NumProcs()
	res, err := RunShardedContext(ctx, r, shards, trace.BlockShard(g, shards),
		func(int) *Torrellas { return NewTorrellas(procs, g) },
		func(c *Torrellas) classifyResult[SharingCounts] {
			return classifyResult[SharingCounts]{counts: c.Finish(), refs: c.DataRefs()}
		},
		func(a, b classifyResult[SharingCounts]) classifyResult[SharingCounts] {
			return classifyResult[SharingCounts]{counts: a.counts.Add(b.counts), refs: a.refs + b.refs}
		})
	if err != nil {
		return SharingCounts{}, 0, err
	}
	return res.counts, res.refs, nil
}
