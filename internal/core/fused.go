package core

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/dense"
	"repro/internal/mem"
	"repro/internal/obs/span"
	"repro/internal/trace"
)

// This file implements the fused multi-configuration replay: one pass over
// a trace feeds every requested block size at once, for each of the three
// classification schemes. Block sizes are powers of two, so the blocks of
// every coarser geometry nest exactly inside the blocks of the finest one;
// per-level classifier state hangs off a dense.Hier keyed at the finest
// granularity, and each reference folds its transition into every level in
// one loop. The per-level counts are bit-for-bit identical to running the
// per-geometry classifiers one at a time over separate replays (the fused
// differential suite and FuzzFusedEquivalence enforce this); DESIGN.md §12
// gives the soundness argument.
//
// Two facts make the single-pass fold exact:
//
//   - The schemes' word-granular state is geometry-independent. The paper's
//     classification compares per-word definition timestamps against
//     per-processor communication bases; the definition written by a store
//     and the global store tick do not depend on the block size, so one
//     shared tick and one shared per-word definition vector (stored in the
//     finest level's cell) serve every level. Torrellas' per-word
//     touched/valid state is shared the same way.
//   - The block-granular state is maintained per level. Presence masks,
//     lifetimes, communication bases and Eggers' modified-since vectors
//     live in per-level arena cells, and each reference applies the exact
//     per-cell transition to each level; the levels never interact.

// Per-level cell layout (uint64 words). The mask words come first at fixed
// offsets so the hot path stays inside the cell's leading cache line; the
// per-processor commBase and openTick words follow at fusedHeader.
const (
	fusedOpen    = iota // procs with an open lifetime (== present: infinite cache, OTF)
	fusedEm             // procs whose open lifetime is already essential
	fusedFr             // procs with a previously classified lifetime
	fusedColdMod        // procs whose first lifetime opened on a modified block
	fusedMod            // non-zero once any processor stored to the block
	fusedHeader         // number of mask words before commBase
)

// fusedLevels computes the internal level order for a geometry list: levels
// sorted finest-first (ascending shift), with order[l] giving the caller's
// index for internal level l and shifts[l] the level's extra shift relative
// to the finest geometry. Duplicate geometries are kept as distinct levels.
func fusedLevels(geoms []mem.Geometry) (order []int, shifts []uint, sorted []mem.Geometry) {
	if len(geoms) == 0 {
		panic("core: fused classifier needs at least one geometry")
	}
	order = make([]int, len(geoms))
	for i := range order {
		order[i] = i
	}
	shiftOf := func(g mem.Geometry) uint {
		return uint(bits.TrailingZeros(uint(g.WordsPerBlock())))
	}
	sort.SliceStable(order, func(a, b int) bool {
		return shiftOf(geoms[order[a]]) < shiftOf(geoms[order[b]])
	})
	fine := shiftOf(geoms[order[0]])
	shifts = make([]uint, len(geoms))
	sorted = make([]mem.Geometry, len(geoms))
	for l, gi := range order {
		sorted[l] = geoms[gi]
		shifts[l] = shiftOf(geoms[gi]) - fine
	}
	return order, shifts, sorted
}

// fusedBlockSizes caches each internal level's block size in bytes, for
// the fused level-sweep span attributes.
func fusedBlockSizes(sorted []mem.Geometry) []int32 {
	blocks := make([]int32, len(sorted))
	for l, g := range sorted {
		blocks[l] = int32(g.BlockBytes())
	}
	return blocks
}

// CoarsestGeometry returns the geometry with the largest block size: the
// granularity fused sharded replays partition the block space by, since a
// partition by the coarsest blocks is a valid partition at every nested
// level.
func CoarsestGeometry(geoms []mem.Geometry) mem.Geometry {
	g := geoms[0]
	for _, o := range geoms[1:] {
		if o.BlockBytes() > g.BlockBytes() {
			g = o
		}
	}
	return g
}

// FusedClassifier runs the paper's Appendix A classification at every
// requested block geometry in one pass over the trace. It implements
// trace.Consumer (synchronization and phase references are ignored, like
// Classifier); feed it the trace, then call Finish. Counts are identical,
// geometry by geometry, to running a fresh Classifier per geometry.
type FusedClassifier struct {
	fine     mem.Geometry
	procs    int
	order    []int
	hier     *dense.Hier
	counts   []Counts
	tick     uint64
	dataRefs uint64

	// Per-level state: a block's cell leads with the five mask words every
	// reference inspects, followed by the per-processor commBase and
	// openTick words, touched only when a lifetime opens, turns essential,
	// or closes. defw holds the shared per-word definition vector the
	// resolve pass reads and stores write, keyed like the finest level (the
	// hier alloc callback allocates it in lockstep with level 0's cells, so
	// one handle indexes both arenas).
	cells []*dense.Arena[uint64] // fusedHeader masks + commBase[procs] + openTick[procs]
	defw  *dense.Arena[uint64]   // shared definitions, one word per fine-block word

	// Batch scratch for the level-major replay (see RefBatch): per-reference
	// metadata resolved once, then applied level by level. Fixed-size,
	// allocated at construction — the hot path never touches the heap.
	meta []uint8    // proc in the low 6 bits, store flag in bit 7
	defs []uint64   // the accessed word's pre-store definition
	hcol [][]uint32 // per level: the reference's cell handle (column-major)
	one  [1]trace.Ref

	// tr is the driving goroutine's span track (nil when tracing is off),
	// injected via SetSpanTrack; blocks caches each level's block size for
	// the level-sweep span attributes.
	tr     *span.Track
	blocks []int32
}

// fusedBatch is the level-major chunk size: big enough to amortize the
// per-level loop setup, small enough that the scratch columns stay cache
// resident.
const fusedBatch = 1024

// NewFusedClassifier returns a FusedClassifier for procs processors over
// the given geometries (any order, duplicates allowed; Finish returns
// counts in the same order). It panics if procs is out of (0, MaxProcs] or
// geoms is empty.
func NewFusedClassifier(procs int, geoms []mem.Geometry) *FusedClassifier {
	if procs <= 0 || procs > MaxProcs {
		panic(fmt.Sprintf("core: processor count %d out of range (0,%d]", procs, MaxProcs))
	}
	order, shifts, sorted := fusedLevels(geoms)
	f := &FusedClassifier{
		fine:   sorted[0],
		procs:  procs,
		order:  order,
		cells:  make([]*dense.Arena[uint64], len(sorted)),
		counts: make([]Counts, len(sorted)),
		meta:   make([]uint8, fusedBatch),
		defs:   make([]uint64, fusedBatch),
		hcol:   make([][]uint32, len(sorted)),
		blocks: fusedBlockSizes(sorted),
	}
	for l := range f.hcol {
		f.hcol[l] = make([]uint32, fusedBatch)
	}
	for l := range sorted {
		f.cells[l] = dense.NewArena[uint64](fusedHeader + 2*procs)
	}
	f.defw = dense.NewArena[uint64](f.fine.WordsPerBlock())
	f.hier = dense.NewHier(shifts, func(level int) uint32 {
		// Allocate the finest level's definition cell in lockstep with its
		// state cell, so one handle indexes both arenas (they only ever
		// allocate here, and never free).
		h := f.cells[level].Alloc()
		if level == 0 {
			f.defw.Alloc()
		}
		return h
	})
	return f
}

// Geometries returns the number of fused levels.
func (f *FusedClassifier) Geometries() int { return len(f.order) }

// SetSpanTrack implements span.TrackSetter: trace.DriveContext hands the
// classifier the driving goroutine's track so resolve passes and level
// sweeps appear as sub-spans of the drive.
func (f *FusedClassifier) SetSpanTrack(t *span.Track) { f.tr = t }

// Ref implements trace.Consumer.
func (f *FusedClassifier) Ref(r trace.Ref) {
	f.one[0] = r
	f.RefBatch(f.one[:])
}

// RefBatch implements trace.BatchConsumer. The replay is level-major: a
// resolve pass walks the batch once, resolving each data reference's
// per-level cell handles and the word-granular communication state (the
// pre-store definition of the accessed word, the store tick — both
// geometry-independent, so they are computed exactly once), then each
// level's state is swept over the whole batch in its own tight loop. The
// per-level transitions never interact, so applying them level by level is
// the same computation as applying them reference by reference — but each
// sweep touches a single arena with the level's working set hot instead of
// striding through every level's state on every reference.
func (f *FusedClassifier) RefBatch(refs []trace.Ref) {
	for len(refs) > 0 {
		startTick := f.tick
		var sp span.Span
		if f.tr != nil {
			sp = f.tr.Begin(span.OpResolve, span.Fields{})
		}
		consumed, n := f.resolve(refs)
		sp.End()
		refs = refs[consumed:]
		if n == 0 {
			continue
		}
		f.dataRefs += uint64(n)
		for l := range f.cells {
			if f.tr != nil {
				sp = f.tr.Begin(span.OpLevelSweep, span.Fields{Level: int32(l), Block: f.blocks[l]})
			}
			f.levelPass(l, n, startTick)
			sp.End()
		}
	}
}

// resolve fills the batch scratch from refs: up to fusedBatch data
// references, skipping synchronization and phase markers. For each data
// reference it resolves the per-level cell handles (allocating state for
// first-touch blocks — all arena growth happens here, so the level passes
// run over stable slabs) and applies the shared word-granular transition:
// record the accessed word's current definition, then overwrite it on a
// store with the fresh tick. It returns how many refs were consumed and how
// many scratch rows were filled.
func (f *FusedClassifier) resolve(refs []trace.Ref) (consumed, n int) {
	for consumed < len(refs) && n < fusedBatch {
		r := refs[consumed]
		consumed++
		var st uint8
		switch r.Kind {
		case trace.Store:
			st = 0x80
		case trace.Load:
		default:
			continue
		}
		hs := f.hier.Handles(uint64(f.fine.BlockOf(r.Addr)))
		for l, h := range hs {
			f.hcol[l][n] = h
		}
		// The accessed word's last definition is the same at every level;
		// read it once from the definition arena (keyed like the finest
		// level). Levels classify against the pre-store value.
		word := f.defw.Slice(hs[0])[f.fine.OffsetOf(r.Addr):]
		f.defs[n] = word[0]
		f.meta[n] = uint8(r.Proc) | st
		if st != 0 {
			// The word's new definition: shared by every level, written once.
			f.tick++
			word[0] = f.tick<<6 | uint64(r.Proc)
		}
		n++
	}
	return consumed, n
}

// levelPass folds scratch rows [0,n) into level l: the paper's
// read_action/write_action applied to the level's lifetime state, using the
// word-granular state the resolve pass recorded. tick replays the global
// store tick from startTick — it advances exactly where resolve advanced
// it, so every row sees the tick value a reference-by-reference replay
// would have seen.
func (f *FusedClassifier) levelPass(l, n int, startTick uint64) {
	// All arena growth happened in resolve, so the slab is stable for the
	// whole sweep; hoisting it keeps the per-row work at plain indexing.
	stride := fusedHeader + 2*f.procs
	slab := f.cells[l].Slab()
	hs := f.hcol[l]
	tick := startTick
	for i := 0; i < n; i++ {
		m := f.meta[i]
		p := int(m & 0x3f)
		bit := uint64(1) << (m & 0x3f)
		cell := slab[int(hs[i])*stride:]
		if cell[fusedOpen]&bit == 0 {
			// read_action: the miss opens a new lifetime. With an infinite
			// cache under the on-the-fly schedule a lifetime is open iff the
			// copy is present, so there is never a stale lifetime to close
			// here (unlike the general Lifetimes engine).
			cell[fusedOpen] |= bit
			cell[fusedHeader+f.procs+p] = tick
			if cell[fusedFr]&bit == 0 && cell[fusedMod] != 0 {
				cell[fusedColdMod] |= bit
			}
		}
		// read_action: touching a word defined by another processor since
		// the last essential miss makes the lifetime essential. Once the
		// lifetime is essential the transition cannot fire again (the
		// communication base was raised to the lifetime's open tick when it
		// became essential, and neither moves within a lifetime), so the em
		// bit short-circuits the comparison — the steady-state loop stays
		// inside the cell's leading mask words.
		if def := f.defs[i]; cell[fusedEm]&bit == 0 && def != 0 && int(def&(MaxProcs-1)) != p {
			if co := cell[fusedHeader:]; def>>6 > co[p] {
				cell[fusedEm] |= bit
				if tk := co[f.procs+p]; tk > co[p] {
					co[p] = tk
				}
			}
		}
		if m&0x80 != 0 {
			// write_action: every other present copy is invalidated on the
			// fly; their lifetimes end and are classified now.
			others := cell[fusedOpen] &^ bit
			if others != 0 {
				co := cell[fusedHeader:]
				for others != 0 {
					q := bits.TrailingZeros64(others)
					others &^= 1 << uint(q)
					f.classify(l, cell, co, q)
				}
			}
			cell[fusedOpen] = bit
			cell[fusedEm] &= bit
			cell[fusedMod] = 1
			tick++
		}
	}
}

// classify scores the closing lifetime of processor q at level l, exactly
// mirroring Lifetimes.classify (there is no replacement class: the fused
// path models infinite caches). cell and co are the block's mask and bases
// cells; the caller adjusts the open/em bits.
func (f *FusedClassifier) classify(l int, cell, co []uint64, q int) {
	bit := uint64(1) << uint(q)
	c := &f.counts[l]
	switch {
	case cell[fusedFr]&bit == 0: // first lifetime: a cold miss
		switch {
		case cell[fusedEm]&bit != 0:
			c.CTS++
		case cell[fusedColdMod]&bit != 0:
			c.CFS++
		default:
			c.PC++
		}
		cell[fusedFr] |= bit
		// The cold miss is kept: it delivered every value defined before
		// its open.
		if tk := co[f.procs+q]; tk > co[q] {
			co[q] = tk
		}
	case cell[fusedEm]&bit != 0:
		c.PTS++
	default:
		c.PFS++
	}
}

// DataRefs returns the number of data references classified so far (each
// reference is counted once, not once per level).
func (f *FusedClassifier) DataRefs() uint64 { return f.dataRefs }

// Finish classifies the lifetimes still open at every level and returns
// the per-geometry totals in the constructor's geometry order. The
// classifier must not be used afterwards.
func (f *FusedClassifier) Finish() []Counts {
	for l := range f.cells {
		f.hier.RangeLevel(l, func(_ uint64, h uint32) {
			cell := f.cells[l].Slice(h)
			co := cell[fusedHeader:]
			open := cell[fusedOpen]
			for open != 0 {
				q := bits.TrailingZeros64(open)
				open &^= 1 << uint(q)
				f.classify(l, cell, co, q)
			}
			cell[fusedOpen] = 0
			cell[fusedEm] = 0
		})
	}
	// One fused pass does the classification work of one replay per level;
	// keep the work-total metric comparable with the per-cell path (which
	// adds each cell's own denominator).
	mOursRefs.Add(f.dataRefs * uint64(len(f.cells)))
	out := make([]Counts, len(f.order))
	for l, gi := range f.order {
		out[gi] = f.counts[l]
	}
	return out
}

// FusedEggers runs Eggers' classification at every requested geometry in
// one pass; see FusedClassifier. The per-cell scheme keeps a per-word
// modified-since-invalidation bit vector per block; replaying that directly
// at every level would loop over a coarse block's words on each miss and
// invalidation. The fused replay keeps an equivalent formulation in O(1)
// per level: per word, the latest store stamp (tick and writer) plus the
// latest store tick by any other writer — geometry-independent, so shared
// by every level like the definition vector — and per level block a
// per-processor reset tick (raised when the processor reloads the block or
// is invalidated). A word counts as modified-since for processor p exactly
// when the latest store to it by a writer other than p is newer than p's
// reset tick; the differential suite checks the counts match the bit-vector
// scheme bit for bit.
type FusedEggers struct {
	fine     mem.Geometry
	procs    int
	order    []int
	hier     *dense.Hier
	cells    []*dense.Arena[uint64] // per level: [present][touched][reset per proc]
	stamps   *dense.Arena[uint64]   // per fine-block word: {tick<<6 | writer, tick by another writer}
	counts   []SharingCounts
	tick     uint64
	dataRefs uint64

	// Batch scratch, as in FusedClassifier.
	meta []uint8
	s1   []uint64 // pre-store stamp: latest store, tick<<6 | writer
	s2   []uint64 // pre-store stamp: latest store tick by a different writer
	hcol [][]uint32
	one  [1]trace.Ref

	// Span instrumentation, as in FusedClassifier.
	tr     *span.Track
	blocks []int32
}

// NewFusedEggers returns a FusedEggers; see NewFusedClassifier.
func NewFusedEggers(procs int, geoms []mem.Geometry) *FusedEggers {
	if procs <= 0 || procs > MaxProcs {
		panic("core: processor count out of range")
	}
	order, shifts, sorted := fusedLevels(geoms)
	e := &FusedEggers{
		fine:   sorted[0],
		procs:  procs,
		order:  order,
		cells:  make([]*dense.Arena[uint64], len(sorted)),
		counts: make([]SharingCounts, len(sorted)),
		meta:   make([]uint8, fusedBatch),
		s1:     make([]uint64, fusedBatch),
		s2:     make([]uint64, fusedBatch),
		hcol:   make([][]uint32, len(sorted)),
		blocks: fusedBlockSizes(sorted),
	}
	for l := range e.hcol {
		e.hcol[l] = make([]uint32, fusedBatch)
	}
	for l := range sorted {
		e.cells[l] = dense.NewArena[uint64](2 + procs)
	}
	e.stamps = dense.NewArena[uint64](2 * e.fine.WordsPerBlock())
	e.hier = dense.NewHier(shifts, func(level int) uint32 {
		h := e.cells[level].Alloc()
		if level == 0 {
			e.stamps.Alloc()
		}
		return h
	})
	return e
}

// Ref implements trace.Consumer.
func (e *FusedEggers) Ref(r trace.Ref) {
	e.one[0] = r
	e.RefBatch(e.one[:])
}

// SetSpanTrack implements span.TrackSetter; see FusedClassifier.
func (e *FusedEggers) SetSpanTrack(t *span.Track) { e.tr = t }

// RefBatch implements trace.BatchConsumer; level-major like
// FusedClassifier.RefBatch.
func (e *FusedEggers) RefBatch(refs []trace.Ref) {
	for len(refs) > 0 {
		startTick := e.tick
		var sp span.Span
		if e.tr != nil {
			sp = e.tr.Begin(span.OpResolve, span.Fields{})
		}
		consumed, n := e.resolve(refs)
		sp.End()
		refs = refs[consumed:]
		if n == 0 {
			continue
		}
		e.dataRefs += uint64(n)
		for l := range e.cells {
			if e.tr != nil {
				sp = e.tr.Begin(span.OpLevelSweep, span.Fields{Level: int32(l), Block: e.blocks[l]})
			}
			e.levelPass(l, n, startTick)
			sp.End()
		}
	}
}

// resolve fills the batch scratch: per data reference, the per-level cell
// handles and the accessed word's pre-store stamps, then the shared
// word-granular store-stamp update (once per reference, for every level).
func (e *FusedEggers) resolve(refs []trace.Ref) (consumed, n int) {
	for consumed < len(refs) && n < fusedBatch {
		r := refs[consumed]
		consumed++
		var st uint8
		switch r.Kind {
		case trace.Store:
			st = 0x80
		case trace.Load:
		default:
			continue
		}
		hs := e.hier.Handles(uint64(e.fine.BlockOf(r.Addr)))
		for l, h := range hs {
			e.hcol[l][n] = h
		}
		word := e.stamps.Slice(hs[0])[2*e.fine.OffsetOf(r.Addr):]
		e.s1[n] = word[0]
		e.s2[n] = word[1]
		e.meta[n] = uint8(r.Proc) | st
		if st != 0 {
			e.tick++
			if int(word[0]&(MaxProcs-1)) != int(r.Proc) {
				// The previous latest store was by a different writer: it
				// becomes the latest store by a writer other than the new one.
				word[1] = word[0] >> 6
			}
			word[0] = e.tick<<6 | uint64(r.Proc)
		}
		n++
	}
	return consumed, n
}

// levelPass folds scratch rows [0,n) into level l's presence, touched and
// reset-tick state; see the type comment for the modified-since
// reformulation.
func (e *FusedEggers) levelPass(l, n int, startTick uint64) {
	// The slab is stable during the sweep (all growth happens in resolve).
	stride := 2 + e.procs
	slab := e.cells[l].Slab()
	hs := e.hcol[l]
	tick := startTick
	for i := 0; i < n; i++ {
		m := e.meta[i]
		p := int(m & 0x3f)
		bit := uint64(1) << (m & 0x3f)
		cell := slab[int(hs[i])*stride:]
		if cell[0]&bit == 0 { // miss
			// The latest store to the accessed word by a writer other than
			// p, from the pre-store stamps.
			s1 := e.s1[i]
			last := s1 >> 6
			if int(s1&(MaxProcs-1)) == p {
				last = e.s2[i]
			}
			switch {
			case cell[1]&bit == 0:
				e.counts[l].Cold++
			case last > cell[2+p]:
				e.counts[l].True++
			default:
				e.counts[l].False++
			}
			cell[0] |= bit
			// Reloading the block resets p's modified-since view: only
			// stores after this point count.
			cell[2+p] = tick
		}
		cell[1] |= bit

		if m&0x80 != 0 {
			if invalidated := cell[0] &^ bit; invalidated != 0 {
				// Losing the copy resets the victims' views too — to just
				// before this store, which they do observe (the per-cell
				// scheme clears their bit vectors and then marks this
				// store's word).
				for invalidated != 0 {
					q := bits.TrailingZeros64(invalidated)
					invalidated &^= 1 << uint(q)
					cell[2+q] = tick
				}
			}
			cell[0] = bit
			tick++
		}
	}
}

// DataRefs returns the number of data references classified.
func (e *FusedEggers) DataRefs() uint64 { return e.dataRefs }

// Finish returns the per-geometry totals in the constructor's geometry
// order; Eggers' verdicts are decided at miss time, so there is nothing to
// flush.
func (e *FusedEggers) Finish() []SharingCounts {
	mEggersRefs.Add(e.dataRefs * uint64(len(e.order)))
	out := make([]SharingCounts, len(e.order))
	for l, gi := range e.order {
		out[gi] = e.counts[l]
	}
	return out
}

// FusedTorrellas runs Torrellas' classification at every requested
// geometry in one pass; see FusedClassifier. The word-level state of the
// scheme (per-word touched and one-word-block validity) is geometry
// independent and shared across levels — it lives in an arena keyed like
// the finest level, replacing the per-cell scheme's word map; only the
// one-word block presence mask is per level.
type FusedTorrellas struct {
	fine     mem.Geometry
	procs    int
	order    []int
	hier     *dense.Hier
	arenas   []*dense.Arena[uint64] // one presence word per level block
	words    *dense.Arena[uint64]   // per fine-block word: {touched, valid}
	counts   []SharingCounts
	dataRefs uint64

	// Batch scratch, as in FusedClassifier.
	meta []uint8
	tv   []uint8 // pre-access word state for the proc: touched bit 0, valid bit 1
	hcol [][]uint32
	one  [1]trace.Ref

	// Span instrumentation, as in FusedClassifier.
	tr     *span.Track
	blocks []int32
}

// NewFusedTorrellas returns a FusedTorrellas; see NewFusedClassifier.
func NewFusedTorrellas(procs int, geoms []mem.Geometry) *FusedTorrellas {
	if procs <= 0 || procs > MaxProcs {
		panic("core: processor count out of range")
	}
	order, shifts, sorted := fusedLevels(geoms)
	t := &FusedTorrellas{
		fine:   sorted[0],
		procs:  procs,
		order:  order,
		arenas: make([]*dense.Arena[uint64], len(sorted)),
		counts: make([]SharingCounts, len(sorted)),
		meta:   make([]uint8, fusedBatch),
		tv:     make([]uint8, fusedBatch),
		hcol:   make([][]uint32, len(sorted)),
		blocks: fusedBlockSizes(sorted),
	}
	for l := range t.hcol {
		t.hcol[l] = make([]uint32, fusedBatch)
	}
	for l := range sorted {
		t.arenas[l] = dense.NewArena[uint64](1)
	}
	t.words = dense.NewArena[uint64](2 * t.fine.WordsPerBlock())
	t.hier = dense.NewHier(shifts, func(level int) uint32 {
		h := t.arenas[level].Alloc()
		if level == 0 {
			t.words.Alloc()
		}
		return h
	})
	return t
}

// Ref implements trace.Consumer.
func (t *FusedTorrellas) Ref(r trace.Ref) {
	t.one[0] = r
	t.RefBatch(t.one[:])
}

// SetSpanTrack implements span.TrackSetter; see FusedClassifier.
func (t *FusedTorrellas) SetSpanTrack(tr *span.Track) { t.tr = tr }

// RefBatch implements trace.BatchConsumer; level-major like
// FusedClassifier.RefBatch.
func (t *FusedTorrellas) RefBatch(refs []trace.Ref) {
	for len(refs) > 0 {
		var sp span.Span
		if t.tr != nil {
			sp = t.tr.Begin(span.OpResolve, span.Fields{})
		}
		consumed, n := t.resolve(refs)
		sp.End()
		refs = refs[consumed:]
		if n == 0 {
			continue
		}
		t.dataRefs += uint64(n)
		for l := range t.arenas {
			if t.tr != nil {
				sp = t.tr.Begin(span.OpLevelSweep, span.Fields{Level: int32(l), Block: t.blocks[l]})
			}
			t.levelPass(l, n)
			sp.End()
		}
	}
}

// resolve fills the batch scratch: per data reference, the per-level block
// handles and the accessing processor's pre-access word state (every level
// classifies against the pre-access values, exactly like the per-cell
// scheme), then the shared word-granular touched/valid update.
func (t *FusedTorrellas) resolve(refs []trace.Ref) (consumed, n int) {
	for consumed < len(refs) && n < fusedBatch {
		r := refs[consumed]
		consumed++
		var st uint8
		switch r.Kind {
		case trace.Store:
			st = 0x80
		case trace.Load:
		default:
			continue
		}
		hs := t.hier.Handles(uint64(t.fine.BlockOf(r.Addr)))
		for l, h := range hs {
			t.hcol[l][n] = h
		}
		bit := uint64(1) << uint(r.Proc)
		word := t.words.Slice(hs[0])[2*t.fine.OffsetOf(r.Addr):]
		touched, valid := word[0], word[1]
		t.tv[n] = uint8(touched>>uint(r.Proc)&1) | uint8(valid>>uint(r.Proc)&1)<<1
		t.meta[n] = uint8(r.Proc) | st
		word[0] = touched | bit
		if st != 0 {
			word[1] = bit // invalidate other word copies
		} else {
			word[1] = valid | bit
		}
		n++
	}
	return consumed, n
}

// levelPass folds scratch rows [0,n) into level l's presence masks.
func (t *FusedTorrellas) levelPass(l, n int) {
	// The slab is stable during the sweep (all growth happens in resolve);
	// the level cells are one word each, so the slab indexes by handle.
	slab := t.arenas[l].Slab()
	hs := t.hcol[l]
	for i := 0; i < n; i++ {
		m := t.meta[i]
		bit := uint64(1) << (m & 0x3f)
		present := &slab[hs[i]]
		if *present&bit == 0 { // miss in the level's block-size system
			switch tv := t.tv[i]; {
			case tv&1 == 0:
				t.counts[l].Cold++
			case tv&2 == 0: // also misses at one-word blocks
				t.counts[l].True++
			default:
				t.counts[l].False++
			}
			*present |= bit
		}
		if m&0x80 != 0 {
			*present = bit // invalidate other block copies
		}
	}
}

// DataRefs returns the number of data references classified.
func (t *FusedTorrellas) DataRefs() uint64 { return t.dataRefs }

// Finish returns the per-geometry totals in the constructor's geometry
// order; the verdicts are decided at miss time.
func (t *FusedTorrellas) Finish() []SharingCounts {
	mTorrellasRefs.Add(t.dataRefs * uint64(len(t.order)))
	out := make([]SharingCounts, len(t.order))
	for l, gi := range t.order {
		out[gi] = t.counts[l]
	}
	return out
}

// FusedClassify runs the paper's classification at every geometry over one
// replay of the trace stream, returning per-geometry counts (in geoms
// order) and the data-reference denominator (shared by all geometries).
func FusedClassify(r trace.Reader, geoms []mem.Geometry) ([]Counts, uint64, error) {
	f := NewFusedClassifier(r.NumProcs(), geoms)
	if err := trace.Drive(r, f); err != nil {
		return nil, 0, err
	}
	counts := f.Finish()
	return counts, f.DataRefs(), nil
}

// FusedClassifyEggers is FusedClassify for Eggers' scheme.
func FusedClassifyEggers(r trace.Reader, geoms []mem.Geometry) ([]SharingCounts, uint64, error) {
	e := NewFusedEggers(r.NumProcs(), geoms)
	if err := trace.Drive(r, e); err != nil {
		return nil, 0, err
	}
	counts := e.Finish()
	return counts, e.DataRefs(), nil
}

// FusedClassifyTorrellas is FusedClassify for Torrellas' scheme.
func FusedClassifyTorrellas(r trace.Reader, geoms []mem.Geometry) ([]SharingCounts, uint64, error) {
	t := NewFusedTorrellas(r.NumProcs(), geoms)
	if err := trace.Drive(r, t); err != nil {
		return nil, 0, err
	}
	counts := t.Finish()
	return counts, t.DataRefs(), nil
}

// fusedResult pairs per-geometry counts with the shared denominator for
// the sharded merge.
type fusedResult struct {
	counts []Counts
	refs   uint64
}

func mergeFusedResults(a, b fusedResult) fusedResult {
	for i := range a.counts {
		a.counts[i] = a.counts[i].Add(b.counts[i])
	}
	a.refs += b.refs
	return a
}

// FusedShardedClassify runs the fused classification with the block space
// partitioned across shards parallel fused classifiers, each driving its
// own reader from open through a shard-native filter — no demux pump. The
// partition is by the coarsest geometry's blocks: nested blocks never
// straddle a coarse block, so the partition is valid at every level and
// the merged counts equal the serial fused counts bit for bit. shards <= 1
// opens one reader and is exactly the serial fused path.
func FusedShardedClassify(ctx context.Context, open func(shard int) (trace.Reader, error), procs int, geoms []mem.Geometry, shards int) ([]Counts, uint64, error) {
	coarse := CoarsestGeometry(geoms)
	res, err := RunShardedOpen(ctx, open, shards, trace.BlockShard(coarse, shards),
		func(int) *FusedClassifier { return NewFusedClassifier(procs, geoms) },
		func(f *FusedClassifier) fusedResult {
			return fusedResult{counts: f.Finish(), refs: f.DataRefs()}
		},
		mergeFusedResults)
	if err != nil {
		return nil, 0, err
	}
	return res.counts, res.refs, nil
}
