package core

import (
	"testing"
)

func TestCountsAggregates(t *testing.T) {
	c := Counts{PC: 1, CTS: 2, CFS: 3, PTS: 4, PFS: 5}
	if c.Cold() != 6 {
		t.Errorf("Cold = %d, want 6", c.Cold())
	}
	if c.Essential() != 10 {
		t.Errorf("Essential = %d, want 10", c.Essential())
	}
	if c.Useless() != 5 {
		t.Errorf("Useless = %d, want 5", c.Useless())
	}
	if c.Total() != 15 {
		t.Errorf("Total = %d, want 15", c.Total())
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{PC: 1, CTS: 2, CFS: 3, PTS: 4, PFS: 5}
	b := Counts{PC: 10, CTS: 20, CFS: 30, PTS: 40, PFS: 50}
	want := Counts{PC: 11, CTS: 22, CFS: 33, PTS: 44, PFS: 55}
	if got := a.Add(b); got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
}

func TestCountsSharing(t *testing.T) {
	c := Counts{PC: 1, CTS: 2, CFS: 3, PTS: 4, PFS: 5}
	want := SharingCounts{Cold: 6, True: 4, False: 5}
	if got := c.Sharing(); got != want {
		t.Errorf("Sharing = %+v, want %+v", got, want)
	}
	if got := want.Total(); got != 15 {
		t.Errorf("SharingCounts.Total = %d, want 15", got)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(5, 200); got != 2.5 {
		t.Errorf("Rate(5,200) = %v, want 2.5", got)
	}
	if got := Rate(5, 0); got != 0 {
		t.Errorf("Rate(5,0) = %v, want 0", got)
	}
	if got := Rate(0, 100); got != 0 {
		t.Errorf("Rate(0,100) = %v, want 0", got)
	}
}

func TestMasks(t *testing.T) {
	if got := allMask(3); got != 0b111 {
		t.Errorf("allMask(3) = %b", got)
	}
	if got := allMask(64); got != ^uint64(0) {
		t.Errorf("allMask(64) = %x", got)
	}
	if got := othersMask(3, 1); got != 0b101 {
		t.Errorf("othersMask(3,1) = %b", got)
	}
	if got := othersMask(1, 0); got != 0 {
		t.Errorf("othersMask(1,0) = %b", got)
	}
}

func TestNewLifetimesRejectsBadProcCounts(t *testing.T) {
	for _, procs := range []int{0, -1, 65, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLifetimes(%d) did not panic", procs)
				}
			}()
			NewLifetimes(procs, b4)
		}()
	}
}

func TestClassifierConstructorsRejectBadProcCounts(t *testing.T) {
	for name, fn := range map[string]func(){
		"eggers":    func() { NewEggers(0, b4) },
		"torrellas": func() { NewTorrellas(65, b4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
