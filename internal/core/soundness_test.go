package core

// Semantic soundness of the classification: the paper defines useless
// misses as those that "can be ignored without affecting the correctness of
// program execution" (§1) — if a PFS-classified miss is not executed and
// the processor keeps its stale copy, every later load still returns the
// globally current value. This test verifies that claim end to end, with an
// oracle completely independent of the classifier's internals:
//
//	pass 1: classify the trace, recording each miss's verdict in order
//	        per (processor, block) via the OnClassify hook;
//	pass 2: replay the trace with real values. Every word's global value
//	        is the id of its last store. Caches hold value snapshots.
//	        Fetches happen only for misses NOT classified PFS; a PFS miss
//	        keeps the stale copy. Every load asserts that the value in
//	        the processor's copy equals the global value.
//
// Any unsoundness — a miss wrongly classified useless — fails the load
// assertion. (The converse, minimality, is the MIN == essential identity
// tested elsewhere.)

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

// verdictLog records, per (proc, block), the classification verdicts of the
// processor's successive misses in order.
type verdictLog map[int]map[mem.Block][]Class

func classifyWithLog(tr *trace.Trace, g mem.Geometry) verdictLog {
	log := make(verdictLog)
	c := NewClassifier(tr.Procs, g)
	// The hook fires at lifetime close; closes happen in miss order per
	// (proc, block) because at most one lifetime per pair is open.
	c.Hook(func(p int, b mem.Block, class Class) {
		perProc := log[p]
		if perProc == nil {
			perProc = make(map[mem.Block][]Class)
			log[p] = perProc
		}
		perProc[b] = append(perProc[b], class)
	})
	for _, r := range tr.Refs {
		c.Ref(r)
	}
	c.Finish()
	return log
}

// value identifies a word's defining store: 0 is the initial value,
// otherwise the 1-based index of the store in the trace.
type value = uint64

// replaySkippingUseless replays the trace with real values, skipping the
// fetch of every PFS-classified miss, and reports the first load that read
// a wrong value (-1 if none).
func replaySkippingUseless(t *testing.T, tr *trace.Trace, g mem.Geometry, log verdictLog) int {
	t.Helper()
	global := make(map[mem.Addr]value)
	type copyState struct {
		words map[mem.Addr]value // snapshot of the block at fetch time
		valid bool
	}
	caches := make([]map[mem.Block]*copyState, tr.Procs)
	missIdx := make([]map[mem.Block]int, tr.Procs)
	for p := range caches {
		caches[p] = make(map[mem.Block]*copyState)
		missIdx[p] = make(map[mem.Block]int)
	}
	fetch := func(p int, b mem.Block) *copyState {
		cs := &copyState{words: make(map[mem.Addr]value), valid: true}
		base := g.BaseOf(b)
		for w := 0; w < g.WordsPerBlock(); w++ {
			cs.words[base+mem.Addr(w)] = global[base+mem.Addr(w)]
		}
		caches[p][b] = cs
		return cs
	}

	var storeID value
	for i, r := range tr.Refs {
		if !r.Kind.IsData() {
			continue
		}
		p := int(r.Proc)
		b := g.BlockOf(r.Addr)
		cs := caches[p][b]
		if cs == nil || !cs.valid {
			// A miss under the on-the-fly schedule: look up its
			// verdict. PFS misses are skipped — the processor
			// keeps (or revives) its stale copy.
			idx := missIdx[p][b]
			missIdx[p][b] = idx + 1
			verdicts := log[p][b]
			if idx >= len(verdicts) {
				t.Fatalf("ref %d: miss %d of P%d on block %d has no verdict", i, idx, p, b)
			}
			if verdicts[idx] == ClassPFS && cs != nil {
				cs.valid = true // ignore the invalidation, keep the stale copy
			} else {
				cs = fetch(p, b)
			}
		}
		if r.Kind == trace.Load {
			if got, want := cs.words[r.Addr], global[r.Addr]; got != want {
				return i
			}
			continue
		}
		// Store: define a new global value, update the local copy, and
		// invalidate all other copies (on the fly).
		storeID++
		global[r.Addr] = storeID
		cs.words[r.Addr] = storeID
		for q := 0; q < tr.Procs; q++ {
			if q == p {
				continue
			}
			if other := caches[q][b]; other != nil {
				other.valid = false
			}
		}
	}
	return -1
}

func checkSoundness(t *testing.T, tr *trace.Trace, g mem.Geometry) {
	t.Helper()
	log := classifyWithLog(tr, g)
	if bad := replaySkippingUseless(t, tr, g, log); bad >= 0 {
		t.Errorf("%v: load at ref %d read a stale value after skipping useless misses", g, bad)
	}
}

func TestSoundnessOnPaperFigures(t *testing.T) {
	for name, tr := range map[string]*trace.Trace{
		"fig1": trace.New(2, trace.S(0, 0), trace.L(1, 0), trace.S(0, 1), trace.L(1, 1)),
		"fig3": trace.New(2, trace.S(0, 1), trace.L(1, 0), trace.L(0, 1), trace.L(0, 0),
			trace.S(1, 0), trace.L(0, 1), trace.L(0, 0)),
		"fig4": trace.New(2, trace.L(0, 1), trace.L(1, 0), trace.S(1, 1), trace.L(0, 0),
			trace.S(1, 0), trace.L(0, 1), trace.L(0, 0)),
	} {
		for _, size := range []int{4, 8} {
			g := mem.MustGeometry(size)
			t.Run(name, func(t *testing.T) { checkSoundness(t, tr, g) })
		}
	}
}

func TestSoundnessOnRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 5, 800, 48)
		for _, size := range []int{4, 8, 32, 128} {
			g := mem.MustGeometry(size)
			log := classifyWithLog(tr, g)
			if bad := replaySkippingUseless(t, tr, g, log); bad >= 0 {
				t.Logf("%v seed %d: stale load at ref %d", g, seed, bad)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The same soundness check over a real workload trace: every load of LU32
// still reads current values when all 465+ useless misses are skipped.
func TestSoundnessOnWorkloadTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("workload soundness replay is slow")
	}
	w := luForSoundness(t)
	for _, size := range []int{8, 64, 1024} {
		g := mem.MustGeometry(size)
		checkSoundness(t, w, g)
	}
}

func luForSoundness(t *testing.T) *trace.Trace {
	t.Helper()
	// Import cycle prevents using package workload here; build a
	// producer/consumer pipeline with the same flavor instead: one
	// processor produces a column, all others consume and update theirs.
	tr := trace.New(8)
	n := 24
	elem := func(i, j int) mem.Addr { return mem.Addr((j*n + i) * 2) }
	for k := 0; k < n-1; k++ {
		owner := k % tr.Procs
		for i := k + 1; i < n; i++ {
			tr.Append(trace.L(owner, elem(i, k)), trace.S(owner, elem(i, k)))
		}
		for j := k + 1; j < n; j++ {
			p := j % tr.Procs
			for i := k + 1; i < n; i++ {
				tr.Append(trace.L(p, elem(i, k)), trace.L(p, elem(i, j)), trace.S(p, elem(i, j)))
			}
		}
	}
	return tr
}
