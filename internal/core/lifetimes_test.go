package core

// Direct tests of the Lifetimes engine API, exercised the way the protocol
// simulators drive it (the Classifier-driven paths are covered by the
// figure and property tests).

import (
	"testing"

	"repro/internal/mem"
)

func TestLifetimesAccessors(t *testing.T) {
	g := mem.MustGeometry(8)
	l := NewLifetimes(4, g)
	if l.NumProcs() != 4 {
		t.Errorf("NumProcs = %d", l.NumProcs())
	}
	if l.Geometry() != g {
		t.Error("Geometry mismatch")
	}
	if l.Snapshot() != (Counts{}) {
		t.Error("fresh engine has counts")
	}
}

func TestLifetimesBasicCycle(t *testing.T) {
	g := mem.MustGeometry(8)
	l := NewLifetimes(2, g)

	// P0 misses, stores; P1 misses, reads the new value; P0's store
	// invalidates nothing (P1 came later).
	l.OpenMiss(0, 0)
	l.Access(0, 0)
	l.RecordStore(0, 0)

	l.OpenMiss(1, 0)
	l.Access(1, 0) // touches P0's fresh value: essential

	l.CloseInvalidate(0, g.BlockOf(0)) // P0's cold lifetime ends
	if snap := l.Snapshot(); snap.PC != 1 {
		t.Errorf("snapshot after one close = %+v", snap)
	}
	counts := l.Finish()
	if want := (Counts{PC: 1, CTS: 1}); counts != want {
		t.Errorf("counts = %+v, want %+v", counts, want)
	}
}

func TestLifetimesCloseIdempotent(t *testing.T) {
	g := mem.MustGeometry(8)
	l := NewLifetimes(2, g)
	b := g.BlockOf(0)

	// Closing without an open lifetime is a no-op.
	l.CloseInvalidate(0, b)
	l.CloseReplace(0, b)
	l.CloseInvalidate(1, mem.Block(99)) // unknown block: no-op
	if l.Finish() != (Counts{}) {
		t.Error("no-op closes produced counts")
	}
}

func TestLifetimesAccessWithoutLifetime(t *testing.T) {
	g := mem.MustGeometry(8)
	l := NewLifetimes(2, g)
	l.RecordStore(0, 0)
	l.Access(1, 0) // P1 has no open lifetime: ignored
	l.Access(1, 9) // unknown block: ignored
	if l.Finish() != (Counts{}) {
		t.Error("stray accesses produced counts")
	}
}

func TestLifetimesReplaceCycle(t *testing.T) {
	g := mem.MustGeometry(8)
	l := NewLifetimes(1, g)
	b := g.BlockOf(0)

	l.OpenMiss(0, 0)
	l.Access(0, 0)
	l.CloseReplace(0, b) // evicted
	l.OpenMiss(0, 0)     // refetch: a replacement miss
	l.Access(0, 0)
	counts := l.Finish()
	if want := (Counts{PC: 1, Repl: 1}); counts != want {
		t.Errorf("counts = %+v, want %+v", counts, want)
	}
}

func TestLifetimesUpgradeMissClassifiesOldLifetime(t *testing.T) {
	g := mem.MustGeometry(8)
	l := NewLifetimes(2, g)

	l.OpenMiss(0, 0)
	l.Access(0, 0)
	// A second OpenMiss without an intervening close (the upgrade-miss
	// path) must classify the first lifetime.
	l.OpenMiss(0, 0)
	if snap := l.Snapshot(); snap.PC != 1 {
		t.Errorf("old lifetime not classified: %+v", snap)
	}
}

func TestLifetimesHookSeesEveryClose(t *testing.T) {
	g := mem.MustGeometry(8)
	l := NewLifetimes(2, g)
	var events []Class
	l.OnClassify = func(p int, b mem.Block, class Class) {
		events = append(events, class)
	}
	l.OpenMiss(0, 0)
	l.RecordStore(0, 0)
	l.OpenMiss(1, 0)
	l.Access(1, 0)
	l.CloseInvalidate(1, g.BlockOf(0))
	l.Finish()
	if len(events) != 2 {
		t.Fatalf("hook saw %d events, want 2", len(events))
	}
	if events[0] != ClassCTS || events[1] != ClassPC {
		t.Errorf("events = %v", events)
	}
}
