package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/trace"
)

// allocTestRefs builds a sharing-heavy reference mix over a fixed block set:
// re-feeding it touches only existing table entries, so a warmed classifier
// should allocate nothing.
func allocTestRefs(procs, blocks int, g mem.Geometry) []trace.Ref {
	refs := make([]trace.Ref, 0, 4096)
	stride := mem.Addr(g.BlockBytes() / mem.WordBytes)
	for i := 0; i < 4096; i++ {
		p := i % procs
		a := mem.Addr(i%blocks)*stride + mem.Addr(i%4)
		if i%5 == 0 {
			refs = append(refs, trace.S(p, a))
		} else {
			refs = append(refs, trace.L(p, a))
		}
	}
	return refs
}

// TestClassifierSteadyStateAllocs pins the Appendix A classifier's hot path
// to zero steady-state allocations: once every block has its dense-table
// entry, classifying references must not touch the heap.
func TestClassifierSteadyStateAllocs(t *testing.T) {
	g := mem.MustGeometry(64)
	refs := allocTestRefs(4, 64, g)
	c := NewClassifier(4, g)
	c.RefBatch(refs) // warm up: populate the block table

	const ceiling = 0.0
	got := testing.AllocsPerRun(10, func() { c.RefBatch(refs) })
	if got > ceiling {
		t.Fatalf("Classifier steady state allocates %.1f allocs per pass, ceiling %.1f", got, ceiling)
	}
}

// TestEggersSteadyStateAllocs does the same for the Eggers comparison
// classifier, whose per-block word vectors live in the shared arena.
func TestEggersSteadyStateAllocs(t *testing.T) {
	g := mem.MustGeometry(64)
	refs := allocTestRefs(4, 64, g)
	c := NewEggers(4, g)
	c.RefBatch(refs)

	const ceiling = 0.0
	got := testing.AllocsPerRun(10, func() { c.RefBatch(refs) })
	if got > ceiling {
		t.Fatalf("Eggers steady state allocates %.1f allocs per pass, ceiling %.1f", got, ceiling)
	}
}

// TestFusedSteadyStateAllocs pins the fused multi-geometry classifier pass
// to zero steady-state allocations: once the hierarchical state exists for
// every fine block, folding references into all the levels must not touch
// the heap — otherwise fusing the sweep would trade the demux tax for a GC
// tax. All three fused schemes are pinned.
func TestFusedSteadyStateAllocs(t *testing.T) {
	geos := []mem.Geometry{
		mem.MustGeometry(8), mem.MustGeometry(64), mem.MustGeometry(1024),
	}
	refs := allocTestRefs(4, 64, mem.MustGeometry(8))

	const ceiling = 0.0
	oc := NewFusedClassifier(4, geos)
	oc.RefBatch(refs) // warm up: populate the hierarchical tables
	if got := testing.AllocsPerRun(10, func() { oc.RefBatch(refs) }); got > ceiling {
		t.Errorf("FusedClassifier steady state allocates %.1f allocs per pass, ceiling %.1f", got, ceiling)
	}

	ec := NewFusedEggers(4, geos)
	ec.RefBatch(refs)
	if got := testing.AllocsPerRun(10, func() { ec.RefBatch(refs) }); got > ceiling {
		t.Errorf("FusedEggers steady state allocates %.1f allocs per pass, ceiling %.1f", got, ceiling)
	}

	tc := NewFusedTorrellas(4, geos)
	tc.RefBatch(refs)
	if got := testing.AllocsPerRun(10, func() { tc.RefBatch(refs) }); got > ceiling {
		t.Errorf("FusedTorrellas steady state allocates %.1f allocs per pass, ceiling %.1f", got, ceiling)
	}
}

// TestInstrumentedPassAllocs pins a fully instrumented classifier pass —
// the batch delivery plus the per-batch metric updates Drive performs
// (counter adds and a histogram observation) and the Finish-time counter —
// to zero steady-state allocations. This is the regression guard for the
// observability layer's "zero overhead" claim: instrumentation must not
// reintroduce heap traffic on the replay path.
func TestInstrumentedPassAllocs(t *testing.T) {
	if !obs.Enabled() {
		t.Fatal("instrumentation disabled; the test must measure the enabled path")
	}
	g := mem.MustGeometry(64)
	refs := allocTestRefs(4, 64, g)
	c := NewClassifier(4, g)
	c.RefBatch(refs) // warm up: populate the block table

	refsCtr := obs.Default.Counter(obs.NameDriveRefs)
	batches := obs.Default.Counter(obs.NameDriveBatches)
	sizes := obs.Default.Histogram(obs.NameDriveBatchSize, nil)

	const ceiling = 0.0
	got := testing.AllocsPerRun(10, func() {
		refsCtr.Add(uint64(len(refs)))
		batches.Inc()
		sizes.Observe(uint64(len(refs)))
		c.RefBatch(refs)
		mOursRefs.Add(uint64(len(refs)))
	})
	if got > ceiling {
		t.Fatalf("instrumented pass allocates %.1f allocs per pass, ceiling %.1f", got, ceiling)
	}
}
