package core

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// PhaseSeries decomposes a classification along the trace's computation
// phases (the Phase markers the workload generators emit at barriers and
// pipeline steps), yielding a time series of miss counts: how the cold ramp
// drains, when sharing misses dominate, how LU's rate climbs as its active
// columns shrink. A miss is attributed to the phase in which its lifetime
// closes — under the on-the-fly schedule that is at most one invalidation
// later than the miss itself.
type PhaseSeries struct {
	classifier *Classifier
	points     []PhasePoint
	prevCounts Counts
	prevRefs   uint64
}

// PhasePoint is the classification delta of one phase.
type PhasePoint struct {
	Counts   Counts
	DataRefs uint64
}

// MissRate returns the phase's total miss rate in percent.
func (p PhasePoint) MissRate() float64 { return Rate(p.Counts.Total(), p.DataRefs) }

// NewPhaseSeries returns a phase-resolved classifier.
func NewPhaseSeries(procs int, g mem.Geometry) *PhaseSeries {
	return &PhaseSeries{classifier: NewClassifier(procs, g)}
}

// Ref implements trace.Consumer.
func (s *PhaseSeries) Ref(r trace.Ref) {
	if r.Kind == trace.Phase {
		s.cut(s.classifier.Snapshot())
		return
	}
	s.classifier.Ref(r)
}

func (s *PhaseSeries) cut(now Counts) {
	refs := s.classifier.DataRefs()
	s.points = append(s.points, PhasePoint{
		Counts:   sub(now, s.prevCounts),
		DataRefs: refs - s.prevRefs,
	})
	s.prevCounts, s.prevRefs = now, refs
}

func sub(a, b Counts) Counts {
	return Counts{
		PC:   a.PC - b.PC,
		CTS:  a.CTS - b.CTS,
		CFS:  a.CFS - b.CFS,
		PTS:  a.PTS - b.PTS,
		PFS:  a.PFS - b.PFS,
		Repl: a.Repl - b.Repl,
	}
}

// Finish returns the per-phase series and, separately, the tail: the work
// after the last phase marker together with the verdicts of the lifetimes
// still open at the end of the trace (every surviving copy's miss is
// classified then, so lumping the tail into the last phase would inflate
// its rate misleadingly).
func (s *PhaseSeries) Finish() (series []PhasePoint, tail PhasePoint) {
	final := s.classifier.Finish()
	tail = PhasePoint{
		Counts:   sub(final, s.prevCounts),
		DataRefs: s.classifier.DataRefs() - s.prevRefs,
	}
	return s.points, tail
}
