package core

// Property-based tests over random traces. These check the structural
// theorems the paper proves or relies on:
//
//   - all three classifications see the same miss events, so their totals
//     agree with each other and with a plain on-the-fly miss count;
//   - ours and Eggers define cold misses identically;
//   - every Eggers true-sharing miss is a PTS miss under our scheme (§3.2:
//     Eggers can only underestimate true sharing);
//   - essential misses, cold misses and CTS+PTS are non-increasing when the
//     block size doubles (§2.1);
//   - classification is deterministic.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

// randomSharingTrace builds traces with heavy fine-grained sharing: a small
// address range ensures blocks are contended by all processors.
func randomSharingTrace(rng *rand.Rand, procs, n, addrRange int) *trace.Trace {
	tr := trace.New(procs)
	for i := 0; i < n; i++ {
		r := trace.Ref{
			Proc: uint16(rng.Intn(procs)),
			Addr: mem.Addr(rng.Intn(addrRange)),
		}
		if rng.Intn(3) == 0 {
			r.Kind = trace.Store
		} else {
			r.Kind = trace.Load
		}
		tr.Append(r)
	}
	return tr
}

// otfMisses is an independent, minimal on-the-fly write-invalidate miss
// counter used as an oracle: infinite caches, a store removes all other
// copies, any access without a copy misses.
func otfMisses(tr *trace.Trace, g mem.Geometry) uint64 {
	present := make(map[mem.Block]uint64)
	var misses uint64
	for _, r := range tr.Refs {
		if !r.Kind.IsData() {
			continue
		}
		b := g.BlockOf(r.Addr)
		bit := uint64(1) << r.Proc
		if present[b]&bit == 0 {
			misses++
			present[b] |= bit
		}
		if r.Kind == trace.Store {
			present[b] = bit
		}
	}
	return misses
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60}
}

func TestTotalsMatchOTFOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 4, 400, 64)
		for _, size := range []int{4, 8, 32, 128} {
			g := mem.MustGeometry(size)
			want := otfMisses(tr, g)
			ours, _, _ := Classify(tr.Reader(), g)
			eggers, _, _ := ClassifyEggers(tr.Reader(), g)
			torr, _, _ := ClassifyTorrellas(tr.Reader(), g)
			if ours.Total() != want || eggers.Total() != want || torr.Total() != want {
				t.Logf("size %d: oracle %d, ours %d, eggers %d, torrellas %d",
					size, want, ours.Total(), eggers.Total(), torr.Total())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestColdCountsAgreeWithEggers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 6, 500, 48)
		for _, size := range []int{4, 16, 64} {
			g := mem.MustGeometry(size)
			ours, _, _ := Classify(tr.Reader(), g)
			eggers, _, _ := ClassifyEggers(tr.Reader(), g)
			if ours.Cold() != eggers.Cold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestEggersTrueSharingIsSubsetOfPTS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 5, 600, 32)
		for _, size := range []int{4, 8, 32} {
			g := mem.MustGeometry(size)
			ours, _, _ := Classify(tr.Reader(), g)
			eggers, _, _ := ClassifyEggers(tr.Reader(), g)
			if eggers.True > ours.PTS {
				t.Logf("size %d: eggers TSM %d > ours PTS %d", size, eggers.True, ours.PTS)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestEssentialMonotoneInBlockSize(t *testing.T) {
	sizes := []int{4, 8, 16, 32, 64, 128}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 4, 500, 96)
		prevEssential := ^uint64(0)
		prevCold := ^uint64(0)
		prevTrue := ^uint64(0) // CTS + PTS
		for _, size := range sizes {
			ours, _, _ := Classify(tr.Reader(), mem.MustGeometry(size))
			if e := ours.Essential(); e > prevEssential {
				t.Logf("essential grew at %d: %d > %d", size, e, prevEssential)
				return false
			} else {
				prevEssential = e
			}
			if c := ours.Cold(); c > prevCold {
				t.Logf("cold grew at %d: %d > %d", size, c, prevCold)
				return false
			} else {
				prevCold = c
			}
			if ts := ours.CTS + ours.PTS; ts > prevTrue {
				t.Logf("CTS+PTS grew at %d: %d > %d", size, ts, prevTrue)
				return false
			} else {
				prevTrue = ts
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestClassificationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomSharingTrace(rng, 8, 2000, 128)
	g := mem.MustGeometry(32)
	a, _, _ := Classify(tr.Reader(), g)
	b, _, _ := Classify(tr.Reader(), g)
	if a != b {
		t.Errorf("two runs disagree: %+v vs %+v", a, b)
	}
}

func TestSingleProcessorHasOnlyPureColdMisses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 1, 300, 64)
		for _, size := range []int{4, 32} {
			ours, _, _ := Classify(tr.Reader(), mem.MustGeometry(size))
			if ours.CTS != 0 || ours.CFS != 0 || ours.PTS != 0 || ours.PFS != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestReadOnlySharingHasNoSharingMisses(t *testing.T) {
	// Loads only: every processor's misses are pure cold.
	tr := trace.New(4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tr.Append(trace.L(rng.Intn(4), mem.Addr(rng.Intn(64))))
	}
	ours, _, _ := Classify(tr.Reader(), mem.MustGeometry(16))
	if ours.Total() != ours.PC {
		t.Errorf("read-only trace has non-cold misses: %+v", ours)
	}
	eggers, _, _ := ClassifyEggers(tr.Reader(), mem.MustGeometry(16))
	if eggers.Total() != eggers.Cold {
		t.Errorf("eggers: read-only trace has non-cold misses: %+v", eggers)
	}
}

func TestDataRefsCounted(t *testing.T) {
	tr := trace.New(2,
		trace.L(0, 1), trace.S(1, 2), trace.A(0, 9), trace.R(0, 9), trace.P(),
	)
	_, refs, err := Classify(tr.Reader(), b4)
	if err != nil {
		t.Fatal(err)
	}
	if refs != 2 {
		t.Errorf("DataRefs = %d, want 2 (sync and phase refs excluded)", refs)
	}
}

func TestWordGrainHasNoFalseSharing(t *testing.T) {
	// With one-word blocks every miss communicates exactly the referenced
	// word, so a non-essential (PFS) miss can still occur only when a
	// processor re-misses on a word whose new value it then... never
	// accesses — impossible, because the missing access touches the word
	// itself. Any invalidation implies another processor stored the word,
	// so the missing access always reads a newly defined value.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomSharingTrace(rng, 4, 400, 32)
		ours, _, _ := Classify(tr.Reader(), b4)
		return ours.PFS == 0 && ours.CFS == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
