package core

// The fused-replay differential suite: one fused pass over a trace must
// reproduce, geometry by geometry and bit for bit, the counts of the
// per-geometry classifiers run over separate replays — for all three
// schemes, across shard counts, with every miss class covered
// non-vacuously, and with the paper's accounting identities intact on the
// fused path.

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

// fusedGeometries is the nesting sweep the fused suite exercises: out of
// order and with a duplicate, so the internal level sort and the
// independence of duplicate levels are both under test.
func fusedGeometries() []mem.Geometry {
	return []mem.Geometry{
		mem.MustGeometry(64),
		mem.MustGeometry(4),
		mem.MustGeometry(1024),
		mem.MustGeometry(16),
		mem.MustGeometry(64), // duplicate level
		mem.MustGeometry(256),
	}
}

// TestFusedMatchesPerGeometry is the headline differential property: the
// fused one-pass classification equals a fresh per-geometry replay for
// every geometry and all three schemes.
func TestFusedMatchesPerGeometry(t *testing.T) {
	geos := fusedGeometries()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 6, 900, 640)

		fused, refs, err := FusedClassify(tr.Reader(), geos)
		if err != nil {
			t.Log(err)
			return false
		}
		fusedE, refsE, err := FusedClassifyEggers(tr.Reader(), geos)
		if err != nil {
			t.Log(err)
			return false
		}
		fusedT, refsT, err := FusedClassifyTorrellas(tr.Reader(), geos)
		if err != nil {
			t.Log(err)
			return false
		}
		if refs != tr.DataRefs() || refsE != refs || refsT != refs {
			t.Logf("denominators diverge: ours %d eggers %d torrellas %d, trace %d",
				refs, refsE, refsT, tr.DataRefs())
			return false
		}
		for gi, g := range geos {
			want, wantRefs, err := Classify(tr.Reader(), g)
			if err != nil {
				t.Log(err)
				return false
			}
			if fused[gi] != want || refs != wantRefs {
				t.Logf("%v: fused %+v, per-cell %+v", g, fused[gi], want)
				return false
			}
			wantE, _, err := ClassifyEggers(tr.Reader(), g)
			if err != nil {
				t.Log(err)
				return false
			}
			if fusedE[gi] != wantE {
				t.Logf("%v eggers: fused %+v, per-cell %+v", g, fusedE[gi], wantE)
				return false
			}
			wantT, _, err := ClassifyTorrellas(tr.Reader(), g)
			if err != nil {
				t.Log(err)
				return false
			}
			if fusedT[gi] != wantT {
				t.Logf("%v torrellas: fused %+v, per-cell %+v", g, fusedT[gi], wantT)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConf(10)); err != nil {
		t.Fatal(err)
	}
}

// TestFusedCoversAllFiveClasses pins the differential on a trace known to
// produce PC, CTS, CFS, PTS and PFS at B=8, so the equality above cannot
// pass vacuously on a class that never occurs.
func TestFusedCoversAllFiveClasses(t *testing.T) {
	tr := allClassesTrace()
	geos := []mem.Geometry{mem.MustGeometry(4), mem.MustGeometry(8), mem.MustGeometry(32)}
	fused, refs, err := FusedClassify(tr.Reader(), geos)
	if err != nil {
		t.Fatal(err)
	}
	at8 := fused[1]
	if at8.PC == 0 || at8.CTS == 0 || at8.CFS == 0 || at8.PTS == 0 || at8.PFS == 0 {
		t.Fatalf("fused counts at B=8 do not cover all five classes: %+v", at8)
	}
	for gi, g := range geos {
		want, wantRefs, err := Classify(tr.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if fused[gi] != want || refs != wantRefs {
			t.Errorf("%v: fused %+v (%d refs), want %+v (%d refs)", g, fused[gi], refs, want, wantRefs)
		}
	}
}

// TestFusedShardedMatchesSerial: the shard-native fused pipeline must equal
// the serial fused pass (and hence the per-cell replays) at every shard
// count, partitioned by the coarsest geometry.
func TestFusedShardedMatchesSerial(t *testing.T) {
	geos := fusedGeometries()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 6, 800, 640)
		want, wantRefs, err := FusedClassify(tr.Reader(), geos)
		if err != nil {
			t.Log(err)
			return false
		}
		open := func(int) (trace.Reader, error) { return tr.Reader(), nil }
		for _, n := range shardCounts {
			got, refs, err := FusedShardedClassify(context.Background(), open, tr.Procs, geos, n)
			if err != nil {
				t.Log(err)
				return false
			}
			if refs != wantRefs {
				t.Logf("shards=%d: refs %d, want %d", n, refs, wantRefs)
				return false
			}
			for gi := range geos {
				if got[gi] != want[gi] {
					t.Logf("shards=%d %v: got %+v, want %+v", n, geos[gi], got[gi], want[gi])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickConf(8)); err != nil {
		t.Fatal(err)
	}
}

// TestFusedInvariants checks the paper's accounting identities on the
// fused path: Essential = Cold + PTS (+ Repl, which the infinite-cache
// fused path keeps at 0) at every level, and the data-reference
// denominator is conserved exactly.
func TestFusedInvariants(t *testing.T) {
	geos := fusedGeometries()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 5, 700, 320)
		fused, refs, err := FusedClassify(tr.Reader(), geos)
		if err != nil {
			t.Log(err)
			return false
		}
		if refs != tr.DataRefs() {
			t.Logf("data refs not conserved: %d of %d", refs, tr.DataRefs())
			return false
		}
		for gi, c := range fused {
			if c.Repl != 0 {
				t.Logf("%v: infinite-cache fused pass produced %d replacement misses", geos[gi], c.Repl)
				return false
			}
			if c.Essential() != c.Cold()+c.PTS {
				t.Logf("%v: essential %d != cold %d + PTS %d", geos[gi], c.Essential(), c.Cold(), c.PTS)
				return false
			}
			if c.Essential() > c.Total() {
				t.Logf("%v: essential %d > total %d", geos[gi], c.Essential(), c.Total())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConf(15)); err != nil {
		t.Fatal(err)
	}
}

// TestFusedDuplicateLevelsAgree: duplicate geometries in one fused pass
// must produce identical counts (their levels share the pass but not the
// state).
func TestFusedDuplicateLevelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomMixedTrace(rng, 6, 1000, 512)
	geos := fusedGeometries() // geos[0] and geos[4] are both B=64
	fused, _, err := FusedClassify(tr.Reader(), geos)
	if err != nil {
		t.Fatal(err)
	}
	if fused[0] != fused[4] {
		t.Fatalf("duplicate B=64 levels diverge: %+v vs %+v", fused[0], fused[4])
	}
	fusedE, _, err := FusedClassifyEggers(tr.Reader(), geos)
	if err != nil {
		t.Fatal(err)
	}
	if fusedE[0] != fusedE[4] {
		t.Fatalf("duplicate Eggers levels diverge: %+v vs %+v", fusedE[0], fusedE[4])
	}
	fusedT, _, err := FusedClassifyTorrellas(tr.Reader(), geos)
	if err != nil {
		t.Fatal(err)
	}
	if fusedT[0] != fusedT[4] {
		t.Fatalf("duplicate Torrellas levels diverge: %+v vs %+v", fusedT[0], fusedT[4])
	}
}

// failAfterReader yields n loads then a terminal error.
type failAfterReader struct {
	n   int
	pos int
	err error
}

func (r *failAfterReader) NumProcs() int { return 2 }
func (r *failAfterReader) Next() (trace.Ref, error) {
	if r.pos >= r.n {
		return trace.Ref{}, r.err
	}
	r.pos++
	return trace.L(0, mem.Addr(r.pos)), nil
}

// TestRunShardedOpenErrors: open errors and mid-stream reader errors must
// surface as the run's error (closing any already-opened readers), and a
// canceled caller context must win.
func TestRunShardedOpenErrors(t *testing.T) {
	geos := []mem.Geometry{mem.MustGeometry(8), mem.MustGeometry(64)}
	openErr := errors.New("generator exploded")

	// open fails on the second shard.
	calls := 0
	open := func(int) (trace.Reader, error) {
		calls++
		if calls > 1 {
			return nil, openErr
		}
		return trace.New(2, trace.L(0, 0)).Reader(), nil
	}
	if _, _, err := FusedShardedClassify(context.Background(), open, 2, geos, 4); !errors.Is(err, openErr) {
		t.Errorf("open error not propagated: %v", err)
	}

	// A shard's stream fails mid-replay: the real error beats the induced
	// cancellation of its siblings.
	streamErr := errors.New("backing store exploded")
	shard := 0
	openFail := func(int) (trace.Reader, error) {
		shard++
		if shard == 2 {
			return &failAfterReader{n: 100, err: streamErr}, nil
		}
		return &failAfterReader{n: 5000, err: io.EOF}, nil
	}
	if _, _, err := FusedShardedClassify(context.Background(), openFail, 2, geos, 4); !errors.Is(err, streamErr) {
		t.Errorf("stream error not propagated: %v", err)
	}

	// Caller cancellation reports the caller's context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	openOK := func(int) (trace.Reader, error) {
		return &failAfterReader{n: 1 << 20, err: io.EOF}, nil
	}
	if _, _, err := FusedShardedClassify(ctx, openOK, 2, geos, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation not propagated: %v", err)
	}
}
