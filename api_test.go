package uselessmiss

// End-to-end tests of the public facade: the headline results of the paper
// expressed against the exported API only.

import (
	"bytes"
	"strings"
	"testing"
)

func TestProtocolsListIsACopy(t *testing.T) {
	a := Protocols()
	a[0] = "corrupted"
	b := Protocols()
	if b[0] != "MIN" {
		t.Error("Protocols() exposes internal state")
	}
	if len(b) != 7 {
		t.Errorf("expected 7 protocols, got %v", b)
	}
}

func TestWorkloadCatalog(t *testing.T) {
	if len(WorkloadNames()) != 7 {
		t.Errorf("WorkloadNames = %v", WorkloadNames())
	}
	if len(SmallWorkloads()) != 4 || len(LargeWorkloads()) != 3 {
		t.Error("experiment sets wrong")
	}
	if _, err := Workload("NOPE"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// The paper's central identity, via the public API only: the MIN protocol's
// miss count equals the essential miss count from the Appendix A
// classification, for every benchmark.
func TestHeadlineMINEqualsEssential(t *testing.T) {
	g := MustGeometry(64)
	for _, name := range SmallWorkloads() {
		w, err := Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		counts, refs, err := Classify(w.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunProtocol("MIN", w.Reader(), g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != counts.Essential() {
			t.Errorf("%s: MIN %d != essential %d", name, res.Misses, counts.Essential())
		}
		if res.DataRefs != refs {
			t.Errorf("%s: ref counts differ: %d vs %d", name, res.DataRefs, refs)
		}
		if res.Counts.PFS != 0 {
			t.Errorf("%s: MIN produced false sharing: %+v", name, res.Counts)
		}
	}
}

// §6/§7 headline: at B=64 the delaying protocols sit essentially at the
// essential miss rate (within a few percent); at B=1024 the cost of
// ownership keeps WBWI clearly above MIN.
func TestHeadlineScheduleEffects(t *testing.T) {
	for _, name := range SmallWorkloads() {
		w, err := Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		cache := MustGeometry(64)
		min64, err := RunProtocol("MIN", w.Reader(), cache)
		if err != nil {
			t.Fatal(err)
		}
		wbwi64, err := RunProtocol("WBWI", w.Reader(), cache)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := float64(wbwi64.Misses) / float64(min64.Misses); ratio > 1.25 {
			t.Errorf("%s B=64: WBWI/MIN = %.2f, expected close to 1 (paper: cost of ownership is very low)", name, ratio)
		}

		page := MustGeometry(1024)
		min1k, err := RunProtocol("MIN", w.Reader(), page)
		if err != nil {
			t.Fatal(err)
		}
		otf1k, err := RunProtocol("OTF", w.Reader(), page)
		if err != nil {
			t.Fatal(err)
		}
		if otf1k.Misses <= min1k.Misses {
			t.Errorf("%s B=1024: OTF %d should exceed essential %d (useless misses dominate pages)",
				name, otf1k.Misses, min1k.Misses)
		}
	}
}

// §7: the MAX schedule is catastrophic for LU at page-sized blocks.
func TestHeadlineMAXBlowupOnLU(t *testing.T) {
	w, err := Workload("LU32")
	if err != nil {
		t.Fatal(err)
	}
	g := MustGeometry(1024)
	otf, err := RunProtocol("OTF", w.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	max, err := RunProtocol("MAX", w.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	if float64(max.Misses) < 3*float64(otf.Misses) {
		t.Errorf("MAX %d vs OTF %d: expected a very large blowup (paper §7)", max.Misses, otf.Misses)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr := NewTrace(2, L(0, 1), S(1, 2), A(0, 9), R(0, 9))
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&bin)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Collect(dec)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := ParseText(strings.NewReader(txt.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Refs {
		if fromBin.Refs[i] != tr.Refs[i] || fromTxt.Refs[i] != tr.Refs[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestFacadeGenerate(t *testing.T) {
	r := Generate(2, func(e *Emitter) {
		e.Load(0, 1)
		e.Store(1, 2)
		e.Phase()
	})
	s := NewStats(2, true)
	if err := Drive(r, s); err != nil {
		t.Fatal(err)
	}
	if s.Loads != 1 || s.Stores != 1 || s.DataSetBytes() != 2*WordBytes {
		t.Errorf("stats wrong: %+v", s)
	}
}

func TestFacadeSimulatorAndClassifierIncremental(t *testing.T) {
	g := MustGeometry(8)
	sim, err := NewSimulator("OTF", 2, g)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClassifier(2, g)
	for _, r := range []Ref{S(0, 0), L(1, 0), S(0, 1), L(1, 1)} {
		sim.Ref(r)
		cl.Ref(r)
	}
	res := sim.Finish()
	counts := cl.Finish()
	if res.Counts != counts {
		t.Errorf("incremental OTF %+v != classifier %+v", res.Counts, counts)
	}
}

func TestFacadeCustomConstructors(t *testing.T) {
	for _, w := range []*Benchmark{
		MP3D(200, 1, 4),
		Water(8, 1, 4),
		LU(16, 4),
		Jacobi(16, 2, 4),
	} {
		tr, err := Collect(w.Reader())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if tr.Procs != 4 {
			t.Errorf("%s: procs = %d", w.Name, tr.Procs)
		}
	}
}
