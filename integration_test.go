package uselessmiss

// Cross-module integration invariants over the real benchmark traces (the
// random-trace variants live in the internal packages; these run the whole
// pipeline end to end the way the paper's evaluation does).

import (
	"bytes"
	"testing"
)

// Every schedule is bounded below by the essential miss rate on the
// race-free benchmark traces, at both the cache and the page block size,
// and bounded above by MAX.
func TestWorkloadProtocolBounds(t *testing.T) {
	for _, name := range SmallWorkloads() {
		w, err := Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, block := range []int{64, 1024} {
			g := MustGeometry(block)
			results := make(map[string]Result)
			for _, proto := range Protocols() {
				res, err := RunProtocol(proto, w.Reader(), g)
				if err != nil {
					t.Fatal(err)
				}
				results[proto] = res
			}
			min := results["MIN"].Misses
			max := results["MAX"].Misses
			for proto, res := range results {
				// A delayed protocol realizes a slightly different
				// legal execution, whose own essential count can
				// sit a hair below the trace's (§2.3); allow 2%.
				if float64(res.Misses) < 0.98*float64(min) {
					t.Errorf("%s/%s B=%d: %d misses below essential %d",
						name, proto, block, res.Misses, min)
				}
				if res.Misses > max {
					t.Errorf("%s/%s B=%d: %d misses above MAX %d",
						name, proto, block, res.Misses, max)
				}
				if res.Counts.Cold() != results["MIN"].Counts.Cold() {
					t.Errorf("%s/%s B=%d: cold %d != MIN's %d",
						name, proto, block, res.Counts.Cold(), results["MIN"].Counts.Cold())
				}
			}
			// "Store combining at the sending end occurs seldom
			// for B=64" (§6): SD stays within half a percent of
			// OTF at cache blocks.
			if block == 64 {
				sd, otf := float64(results["SD"].Misses), float64(results["OTF"].Misses)
				if sd < 0.995*otf || sd > 1.005*otf {
					t.Errorf("%s B=64: SD %d should be within 0.5%% of OTF %d",
						name, results["SD"].Misses, results["OTF"].Misses)
				}
			}
		}
	}
}

// The OTF protocol's full decomposition equals the Appendix A
// classification on every benchmark, at cache and page block sizes.
func TestWorkloadOTFIsTheClassification(t *testing.T) {
	for _, name := range SmallWorkloads() {
		w, err := Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, block := range []int{64, 1024} {
			g := MustGeometry(block)
			counts, refs, err := Classify(w.Reader(), g)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunProtocol("OTF", w.Reader(), g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Counts != counts || res.DataRefs != refs {
				t.Errorf("%s B=%d: OTF %+v != classification %+v", name, block, res.Counts, counts)
			}
		}
	}
}

// Essential misses never increase with the block size on the benchmarks
// (the §2.1 theorem, checked on real traces across the full sweep).
func TestWorkloadEssentialMonotone(t *testing.T) {
	for _, name := range SmallWorkloads() {
		w, err := Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		prev := ^uint64(0)
		for _, block := range []int{8, 32, 128, 512, 2048} {
			counts, _, err := Classify(w.Reader(), MustGeometry(block))
			if err != nil {
				t.Fatal(err)
			}
			if e := counts.Essential(); e > prev {
				t.Errorf("%s: essential grew %d -> %d at B=%d", name, prev, e, block)
			} else {
				prev = e
			}
		}
	}
}

// Binary round-tripping a benchmark trace preserves every analysis result.
func TestWorkloadCodecTransparency(t *testing.T) {
	w, err := Workload("LU32")
	if err != nil {
		t.Fatal(err)
	}
	g := MustGeometry(64)

	direct, _, err := Classify(w.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, w.Reader()); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	viaCodec, _, err := Classify(dec, g)
	if err != nil {
		t.Fatal(err)
	}
	if direct != viaCodec {
		t.Errorf("codec changed the classification: %+v vs %+v", direct, viaCodec)
	}
}
