GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x
# Aggregate statement-coverage floor, in percent. The suite sat at ~88% when
# the floor was set; drops below the floor fail `make cover` (and ci).
COVERFLOOR ?= 85.0

.PHONY: all build test race vet fmt golden golden-check metrics-check trace-check faults serve-check cover fuzz bench bench-save bench-compare bench-gate ci

# Where bench-save snapshots benchmark output and bench-compare reads it.
BENCHDIR ?= results
BENCHFILE ?= $(BENCHDIR)/bench_baseline.txt

# The machine-readable perf baseline the CI gate defends, written by
# bench-save and compared by bench-gate ('uselessmiss bench', see DESIGN.md
# §10). BENCHTOL is the allowed fractional refs/s drop; allocs/pass on
# pinned paths hard-fails at any tolerance.
BENCHJSON ?= $(BENCHDIR)/BENCH_baseline.json
BENCHTOL ?= 0.10

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The determinism suite under the race detector is the regression guard for
# the parallel sweep engine: any unsynchronized access in a driver or the
# trace cache fails here. Race instrumentation slows the driver replays far
# below real speed (every dense-table probe is an instrumented slice access),
# so give the experiment package room beyond go test's 10m default.
RACETIMEOUT ?= 30m
race:
	$(GO) test -race -timeout $(RACETIMEOUT) ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

# Refresh the committed golden outputs after an intentional output change.
golden:
	$(GO) test ./cmd/uselessmiss -run TestGoldenOutputs -update

# The golden determinism matrix: every pinned experiment output must be byte
# identical serially (-j 1), on the parallel sweep (-j 8), and through the
# block-sharded pipeline (-shards 1 and -shards 8).
golden-check:
	$(GO) test ./cmd/uselessmiss -run TestGoldenOutputs -count=1

# The metrics determinism matrix: drive fig5 through the real CLI with
# -metrics at -j 1 and -j 8 and diff the deterministic section of the run
# reports (the timings section is excluded by construction), then check the
# work-total counters are invariant across -shards 1 and 8 for both a
# classifier and a protocol experiment.
metrics-check:
	$(GO) test ./cmd/uselessmiss -count=1 \
		-run 'TestMetricsDeterministicAcrossParallelism|TestMetricsInvariantAcrossShards|TestMetricsFileIsDeterministic'

# The flight-recorder suite: -trace-out must yield a Perfetto-loadable
# trace_event stream covering every pipeline layer, the demux flow arrows
# must pair up, and recording must be a pure observer — fig5's stdout stays
# byte-identical to the golden across -j × -shards × -fused with the
# recorder on.
trace-check:
	$(GO) test ./cmd/uselessmiss -count=1 \
		-run 'TestTraceOutPerfettoValid|TestTraceOutFlowEvents|TestTraceOutGoldenMatrix'

# The failure-model suite under the race detector: the fault injectors
# (internal/fault) against every -j × -shards combination, plus the
# cancellation race and codec corruption tests — typed errors must
# propagate, nothing may deadlock or leak, and partial output must never
# pass as complete.
faults:
	$(GO) test -race -count=1 ./internal/fault
	$(GO) test -race -count=1 ./internal/trace \
		-run 'TestCancelMidReplayRace|TestStallDrainsOnCancel|TestCorrupt|TestV1Stream|TestDriveContextAllocs'
	$(GO) test -race -count=1 ./cmd/uselessmiss \
		-run 'TestExitCode|TestTimeoutExpires|TestManifest|TestRegenResumeWithoutManifest'

# The serving-mode suite under the race detector: admission control, the
# circuit breaker, graceful drain (readyz-first ordering, forced-cancel exit
# path), chaos lifecycle leak checks, and the load generator — plus the
# HTTP-vs-offline differential jobs in cmd/uselessmiss. Any unsynchronized
# access on the submit path or a goroutine leaked across a drain fails here.
serve-check:
	$(GO) test -race -count=1 ./internal/serve ./internal/load
	$(GO) test -race -count=1 ./cmd/uselessmiss -run 'TestServeDifferential'

# Enforce the aggregate statement-coverage floor: fails if the whole-repo
# total drops below $(COVERFLOOR)%.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVERFLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVERFLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' \
		|| { echo "FAIL: coverage $$total% is below the $(COVERFLOOR)% floor"; exit 1; }

# Short fuzzing smoke over every target, starting from the committed seed
# corpora under internal/trace/testdata/fuzz.
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzDecoder -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzParseText -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzClassifierRobustness -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzShardedEquivalence -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzFusedEquivalence -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tracestore -run '^$$' -fuzz FuzzTracestoreRoundtrip -fuzztime $(FUZZTIME)

# All benchmarks across every package: the root paper-artifact benchmarks,
# the perfbench harness workloads, and the internal/dense + internal/trace
# microbenchmarks.
bench:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' ./...

# Snapshot the current benchmark numbers as the comparison baselines: the
# raw `go test -bench` text for benchstat, plus the machine-readable
# BENCH_baseline.json the perf gate diffs against. Commit the JSON after an
# intentional perf change (see README "Performance methodology").
bench-save:
	@mkdir -p $(BENCHDIR)
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' ./... | tee $(BENCHFILE)
	$(GO) run ./cmd/uselessmiss bench -o $(BENCHJSON) -log info

# Compare a fresh run against the saved baseline: benchstat when installed,
# otherwise a sorted side-by-side diff of the benchmark lines.
bench-compare:
	@test -f $(BENCHFILE) || { echo "no baseline at $(BENCHFILE); run 'make bench-save' first"; exit 1; }
	@new=$$(mktemp); \
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' ./... > "$$new" || { rm -f "$$new"; exit 1; }; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCHFILE) "$$new"; \
	else \
		old_sorted=$$(mktemp); new_sorted=$$(mktemp); \
		grep '^Benchmark' $(BENCHFILE) | sort > "$$old_sorted"; \
		grep '^Benchmark' "$$new" | sort > "$$new_sorted"; \
		echo "benchstat not installed; showing old (<) vs new (>) benchmark lines:"; \
		diff "$$old_sorted" "$$new_sorted" || true; \
		rm -f "$$old_sorted" "$$new_sorted"; \
	fi; \
	rm -f "$$new"

# The CI perf gate: run the profile-guided harness and fail (exit != 0 with
# a regression table) when any workload is slower than the committed
# baseline beyond BENCHTOL, a pinned path allocates per pass, or a baseline
# workload went missing. The fresh BENCH_<host>_<date>.json lands in the
# working directory for artifact upload.
bench-gate:
	@test -f $(BENCHJSON) || { echo "no baseline at $(BENCHJSON); run 'make bench-save' first"; exit 1; }
	$(GO) run ./cmd/uselessmiss bench -baseline $(BENCHJSON) -tolerance $(BENCHTOL) -log info

ci: build vet fmt test race golden-check metrics-check trace-check faults serve-check cover
