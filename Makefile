GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x

.PHONY: all build test race vet fmt golden fuzz bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The determinism suite under the race detector is the regression guard for
# the parallel sweep engine: any unsynchronized access in a driver or the
# trace cache fails here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

# Refresh the committed golden outputs after an intentional output change.
golden:
	$(GO) test ./cmd/uselessmiss -run TestGoldenOutputs -update

# Short fuzzing smoke over every target, starting from the committed seed
# corpora under internal/trace/testdata/fuzz.
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzDecoder -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzParseText -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzClassifierRobustness -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -run '^$$' .

ci: build vet fmt test race
