// Padding demonstrates software elimination of useless misses — the
// compiler-based approach the paper's introduction motivates ("it is
// important to understand how much improvement is due to the elimination of
// useless misses and how much is due to better locality"). JACOBI's false
// sharing at 256-byte blocks comes from two processors' 128-byte subgrid
// rows sharing one block; remapping the trace so every subgrid row starts
// on its own block (array padding) removes it. The classification then
// shows exactly what the transformation bought: the useless component
// disappears while the essential component barely moves.
package main

import (
	"fmt"
	"log"

	uselessmiss "repro"
)

func main() {
	w, err := uselessmiss.Workload("JACOBI")
	if err != nil {
		log.Fatal(err)
	}
	g := uselessmiss.MustGeometry(256)

	// A subgrid row is 16 doubles = 32 words; pad each to 64 words so it
	// fills a 256-byte block alone. Everything outside the grids
	// (residuals, barrier) is moved far away unchanged.
	gridWords := uselessmiss.Addr(2 * 64 * 64 * 2)
	pad := func(a uselessmiss.Addr) uselessmiss.Addr {
		if a >= gridWords {
			return a + 1<<20
		}
		segment := a / 32
		return a + segment*32
	}

	before, refs, err := uselessmiss.Classify(w.Reader(), g)
	if err != nil {
		log.Fatal(err)
	}
	after, _, err := uselessmiss.Classify(uselessmiss.Remap(w.Reader(), pad), g)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, c uselessmiss.Counts) {
		fmt.Printf("%-14s total %5.2f%%  essential %5.2f%%  useless %5.2f%%\n",
			label,
			uselessmiss.Rate(c.Total(), refs),
			uselessmiss.Rate(c.Essential(), refs),
			uselessmiss.Rate(c.Useless(), refs))
	}
	fmt.Printf("%s at B=256 bytes\n", w.Name)
	show("unpadded", before)
	show("rows padded", after)
	fmt.Printf("\nuseless misses removed by padding: %d of %d\n",
		before.Useless()-after.Useless(), before.Useless())
}
