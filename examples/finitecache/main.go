// Finitecache runs the paper's §8 finite-cache extension: as the
// per-processor cache shrinks, replacement misses appear — and since a
// replacement miss is essential by definition, the essential fraction of
// the miss rate rises.
package main

import (
	"fmt"
	"log"

	uselessmiss "repro"
)

func main() {
	w, err := uselessmiss.Workload("JACOBI")
	if err != nil {
		log.Fatal(err)
	}
	g := uselessmiss.MustGeometry(64)

	fmt.Printf("%s, 64-byte blocks, 4-way LRU caches\n", w.Name)
	fmt.Printf("%10s %8s %8s %8s %8s %12s\n",
		"cache", "cold%", "true%", "repl%", "false%", "essential")

	for _, capacity := range []int{512, 2 << 10, 8 << 10, 0} {
		var counts uselessmiss.Counts
		var refs uint64
		label := "infinite"
		if capacity == 0 {
			counts, refs, err = uselessmiss.Classify(w.Reader(), g)
		} else {
			label = fmt.Sprintf("%dB", capacity)
			cfg := uselessmiss.CacheConfig{
				CapacityBytes: capacity,
				Assoc:         4,
				Policy:        uselessmiss.PolicyLRU,
			}
			counts, refs, err = uselessmiss.ClassifyFinite(w.Reader(), g, cfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10s %8.2f %8.2f %8.2f %8.2f %11.1f%%\n",
			label,
			uselessmiss.Rate(counts.Cold(), refs),
			uselessmiss.Rate(counts.PTS, refs),
			uselessmiss.Rate(counts.Repl, refs),
			uselessmiss.Rate(counts.PFS, refs),
			100*float64(counts.Essential())/float64(counts.Total()))
	}
}
