// Protocols compares the paper's seven invalidation schedules on MP3D at a
// cache block size (64 B) and a virtual-shared-memory page size (1024 B),
// reproducing the Fig. 6 story: at 64 bytes the delaying/combining
// protocols sit at the essential miss rate; at 1024 bytes the cost of
// maintaining ownership keeps them above it.
package main

import (
	"fmt"
	"log"

	uselessmiss "repro"
)

func main() {
	w, err := uselessmiss.Workload("MP3D1000")
	if err != nil {
		log.Fatal(err)
	}
	for _, blockBytes := range []int{64, 1024} {
		g := uselessmiss.MustGeometry(blockBytes)
		fmt.Printf("\n%s at B=%d bytes:\n", w.Name, blockBytes)
		fmt.Printf("%6s %9s %8s %8s %8s %14s\n",
			"proto", "miss%", "true%", "cold%", "false%", "invalidations")

		var essential float64
		for _, name := range uselessmiss.Protocols() {
			res, err := uselessmiss.RunProtocol(name, w.Reader(), g)
			if err != nil {
				log.Fatal(err)
			}
			if name == "MIN" {
				essential = res.MissRate()
			}
			c := res.Counts
			fmt.Printf("%6s %9.2f %8.2f %8.2f %8.2f %14d\n",
				name, res.MissRate(),
				uselessmiss.Rate(c.PTS, res.DataRefs),
				uselessmiss.Rate(c.Cold(), res.DataRefs),
				uselessmiss.Rate(c.PFS, res.DataRefs),
				res.Invalidations)
		}
		fmt.Printf("essential miss rate (MIN): %.2f%%\n", essential)
	}
}
