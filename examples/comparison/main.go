// Comparison classifies every miss of a workload jointly under the three
// classification schemes of §3 and prints the confusion matrix against
// Torrellas' scheme — quantifying its "prefetching effects": the misses it
// labels false or cold that actually communicate values the processor goes
// on to read.
package main

import (
	"fmt"
	"log"

	uselessmiss "repro"
)

func main() {
	w, err := uselessmiss.Workload("WATER16")
	if err != nil {
		log.Fatal(err)
	}
	g := uselessmiss.MustGeometry(64)

	matrix, refs, err := uselessmiss.Cross(w.Reader(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at B=64: %d misses over %d references\n\n", w.Name, matrix.Total(), refs)

	labels := [3]string{"COLD", "TRUE", "FALSE"}
	vt := matrix.OursVsTorrellas()
	fmt.Printf("%18s %8s %8s %8s\n", "ours \\ torrellas", labels[0], labels[1], labels[2])
	for o, row := range vt {
		fmt.Printf("%18s %8d %8d %8d\n", labels[o], row[0], row[1], row[2])
	}
	fmt.Printf("\nagreement: %.1f%%\n", 100*uselessmiss.Agreement(vt))

	hidden := vt[uselessmiss.SharingTrue][uselessmiss.SharingFalse] +
		vt[uselessmiss.SharingTrue][uselessmiss.SharingCold]
	fmt.Printf("misses Torrellas mislabels that carry needed values: %d\n", hidden)
	fmt.Println("(the paper's §3.1 notes these 'prefetching effects' were never quantified)")
}
