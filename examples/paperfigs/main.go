// Paperfigs replays the worked examples of the paper's Figures 1-4 through
// the three classification schemes and prints each scheme's verdict,
// reproducing the comparisons of §2 and §3.
package main

import (
	"fmt"
	"log"

	uselessmiss "repro"
)

type figure struct {
	name  string
	about string
	trace *uselessmiss.Trace
	block int
}

func figures() []figure {
	// The paper's P1 is proc 0, P2 is proc 1; words 0 and 1 share one
	// block at B=8.
	return []figure{
		{
			name:  "Figure 1 (B=4)",
			about: "block-size effect, one-word blocks: four essential misses",
			block: 4,
			trace: uselessmiss.NewTrace(2,
				uselessmiss.S(0, 0), uselessmiss.L(1, 0),
				uselessmiss.S(0, 1), uselessmiss.L(1, 1)),
		},
		{
			name:  "Figure 1 (B=8)",
			about: "block-size effect, two-word blocks: a CTS miss turns into PTS",
			block: 8,
			trace: uselessmiss.NewTrace(2,
				uselessmiss.S(0, 0), uselessmiss.L(1, 0),
				uselessmiss.S(0, 1), uselessmiss.L(1, 1)),
		},
		{
			name:  "Figure 2 (delayed store)",
			about: "interleaving effect: delaying P1's second store creates a PTS miss",
			block: 8,
			trace: uselessmiss.NewTrace(2,
				uselessmiss.S(0, 0), uselessmiss.L(1, 0),
				uselessmiss.S(0, 1), uselessmiss.L(1, 1)),
		},
		{
			name:  "Figure 2 (early store)",
			about: "the equivalent interleaving with both stores first: one essential miss less",
			block: 8,
			trace: uselessmiss.NewTrace(2,
				uselessmiss.S(0, 0), uselessmiss.S(0, 1),
				uselessmiss.L(1, 0), uselessmiss.L(1, 1)),
		},
		{
			name:  "Figure 3",
			about: "the T5 miss carries the value read at T6: ours PTS, earlier schemes FSM",
			block: 8,
			trace: uselessmiss.NewTrace(2,
				uselessmiss.S(0, 1), uselessmiss.L(1, 0),
				uselessmiss.L(0, 1), uselessmiss.L(0, 0),
				uselessmiss.S(1, 0), uselessmiss.L(0, 1),
				uselessmiss.L(0, 0)),
		},
		{
			name:  "Figure 4",
			about: "Torrellas counts word-grain cold misses and more true sharing than Eggers",
			block: 8,
			trace: uselessmiss.NewTrace(2,
				uselessmiss.L(0, 1), uselessmiss.L(1, 0),
				uselessmiss.S(1, 1), uselessmiss.L(0, 0),
				uselessmiss.S(1, 0), uselessmiss.L(0, 1),
				uselessmiss.L(0, 0)),
		},
	}
}

func main() {
	for _, f := range figures() {
		g := uselessmiss.MustGeometry(f.block)
		ours, _, err := uselessmiss.Classify(f.trace.Reader(), g)
		if err != nil {
			log.Fatal(err)
		}
		eggers, _, err := uselessmiss.ClassifyEggers(f.trace.Reader(), g)
		if err != nil {
			log.Fatal(err)
		}
		torr, _, err := uselessmiss.ClassifyTorrellas(f.trace.Reader(), g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %s\n", f.name, f.about)
		fmt.Printf("  ours:      PC=%d CTS=%d CFS=%d PTS=%d PFS=%d (essential %d)\n",
			ours.PC, ours.CTS, ours.CFS, ours.PTS, ours.PFS, ours.Essential())
		fmt.Printf("  eggers:    CM=%d TSM=%d FSM=%d\n", eggers.Cold, eggers.True, eggers.False)
		fmt.Printf("  torrellas: CM=%d TSM=%d FSM=%d\n\n", torr.Cold, torr.True, torr.False)
	}
}
