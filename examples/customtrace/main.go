// Customtrace shows the trace tooling end to end: generate a custom
// workload with explicit parameters, stream it to a binary trace file,
// reload it, and verify that classifying the file gives the same answer as
// classifying the live stream. The same file format is what the
// 'uselessmiss tracegen' and 'uselessmiss classify -trace' commands use.
package main

import (
	"bytes"
	"fmt"
	"log"

	uselessmiss "repro"
)

func main() {
	// A scaled-down WATER run: 32 molecules, 2 time steps, 8 processors.
	w := uselessmiss.Water(32, 2, 8)
	fmt.Println(w.Description)

	// Stream the trace into the binary codec (a file in real use).
	var buf bytes.Buffer
	if err := uselessmiss.WriteBinary(&buf, w.Reader()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded trace: %d bytes\n", buf.Len())

	// Reload and characterize it.
	dec, err := uselessmiss.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	stats := uselessmiss.NewStats(dec.NumProcs(), true)
	if err := uselessmiss.Drive(dec, stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded: %d loads, %d stores, %d sync ops, %d KB touched, speedup %.1f\n",
		stats.Loads, stats.Stores, stats.SyncRefs(), stats.DataSetBytes()/1024, stats.Speedup())

	// Classify both the file and a fresh generation; they must agree.
	g := uselessmiss.MustGeometry(64)
	dec, err = uselessmiss.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fromFile, _, err := uselessmiss.Classify(dec, g)
	if err != nil {
		log.Fatal(err)
	}
	fromLive, _, err := uselessmiss.Classify(w.Reader(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification from file: %+v\n", fromFile)
	if fromFile != fromLive {
		log.Fatalf("file and live classification disagree: %+v vs %+v", fromFile, fromLive)
	}
	fmt.Println("file and live classification agree")
}
