// Quickstart: classify the misses of a tiny hand-written sharing pattern
// and of a full synthetic benchmark trace.
package main

import (
	"fmt"
	"log"

	uselessmiss "repro"
)

func main() {
	// Two processors false-sharing an 8-byte block: proc 0 owns word 0,
	// proc 1 owns word 1, and they never read each other's values.
	g := uselessmiss.MustGeometry(8)
	tr := uselessmiss.NewTrace(2,
		uselessmiss.S(0, 0), // proc 0 writes its word (cold miss)
		uselessmiss.S(1, 1), // proc 1 writes the neighboring word (cold miss)
		uselessmiss.S(0, 0), // proc 0 misses again: the block ping-pongs...
		uselessmiss.S(1, 1), // ...but nobody ever reads the other's data
		uselessmiss.S(0, 0),
		uselessmiss.S(1, 1),
	)
	counts, refs, err := uselessmiss.Classify(tr.Reader(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-written ping-pong: %d refs, %d misses, %d essential, %d useless\n",
		refs, counts.Total(), counts.Essential(), counts.Useless())

	// The same question for a whole benchmark: how much of JACOBI's miss
	// rate at a 1024-byte page is useless?
	w, err := uselessmiss.Workload("JACOBI")
	if err != nil {
		log.Fatal(err)
	}
	page := uselessmiss.MustGeometry(1024)
	counts, refs, err = uselessmiss.Classify(w.Reader(), page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at B=1024: miss rate %.2f%%, essential %.2f%%, useless %.2f%%\n",
		w.Name,
		uselessmiss.Rate(counts.Total(), refs),
		uselessmiss.Rate(counts.Essential(), refs),
		uselessmiss.Rate(counts.Useless(), refs))

	// The write-back word-invalidate protocol (WBWI) eliminates most of
	// the useless misses by delaying and combining invalidations.
	res, err := uselessmiss.RunProtocol("WBWI", w.Reader(), page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WBWI at B=1024: miss rate %.2f%% (%d invalidation messages)\n",
		res.MissRate(), res.Invalidations)
}
