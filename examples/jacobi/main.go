// Jacobi sweeps the block size over the JACOBI workload and prints the miss
// decomposition, reproducing the paper's §6 analysis: true sharing halves
// from 4- to 8-byte blocks (elements are 8-byte doubles) and false sharing
// jumps at 256 bytes, where a block first spans two processors' 128-byte
// subgrid rows.
package main

import (
	"fmt"
	"log"

	uselessmiss "repro"
)

func main() {
	w, err := uselessmiss.Workload("JACOBI")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(w.Description)
	fmt.Printf("%8s %10s %10s %10s %10s\n", "B(bytes)", "cold%", "true%", "false%", "total%")

	type point struct {
		b             int
		trueR, falseR float64
	}
	var series []point
	for _, b := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		g := uselessmiss.MustGeometry(b)
		counts, refs, err := uselessmiss.Classify(w.Reader(), g)
		if err != nil {
			log.Fatal(err)
		}
		cold := uselessmiss.Rate(counts.Cold(), refs)
		pts := uselessmiss.Rate(counts.PTS, refs)
		pfs := uselessmiss.Rate(counts.PFS, refs)
		fmt.Printf("%8d %10.3f %10.3f %10.3f %10.3f\n",
			b, cold, pts, pfs, uselessmiss.Rate(counts.Total(), refs))
		series = append(series, point{b, pts, pfs})
	}

	fmt.Println()
	for i := 1; i < len(series); i++ {
		prev, cur := series[i-1], series[i]
		if prev.b == 4 && cur.b == 8 {
			fmt.Printf("true sharing 4->8 bytes: %.3f%% -> %.3f%% (paper: drops to half; elements are doubles)\n",
				prev.trueR, cur.trueR)
		}
		if prev.b == 128 && cur.b == 256 {
			fmt.Printf("false sharing 128->256 bytes: %.3f%% -> %.3f%% (paper: abrupt jump; subgrid rows are 128 B)\n",
				prev.falseR, cur.falseR)
		}
	}
}
