package uselessmiss

// The benchmark harness: one testing.B benchmark per paper artifact
// (Tables 1-2, Fig. 5, Fig. 6a/6b, the §7 large-set study) plus component
// microbenchmarks for the classifiers, the protocol simulators, the
// workload generators and the trace codecs. Each experiment benchmark runs
// the same code path as the corresponding `uselessmiss` subcommand; the
// large-set benchmark uses proportionally scaled-down runs so a benchmark
// iteration stays in seconds (the full-size runs are driven by
// `uselessmiss table1` / `uselessmiss large`).

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

// benchTrace caches one in-memory LU32 trace for the microbenchmarks.
var benchTrace = sync.OnceValue(func() *Trace {
	w, err := Workload("LU32")
	if err != nil {
		panic(err)
	}
	tr, err := Collect(w.Reader())
	if err != nil {
		panic(err)
	}
	return tr
})

func benchOpts() ExperimentOptions {
	return ExperimentOptions{Out: io.Discard, Quick: true}
}

// BenchmarkTable1 regenerates the classification comparison of Table 1
// (quick data sets; the full LU200/MP3D10000 table is `uselessmiss table1`).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the benchmark characteristics of Table 2.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the per-benchmark block-size sweeps of Fig. 5.
func BenchmarkFig5(b *testing.B) {
	for _, name := range SmallWorkloads() {
		b.Run(name, func(b *testing.B) {
			o := benchOpts()
			o.Workloads = []string{name}
			for i := 0; i < b.N; i++ {
				if err := Fig5(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6a and BenchmarkFig6b regenerate the protocol comparisons at
// the cache (64 B) and page (1024 B) block sizes.
func BenchmarkFig6a(b *testing.B) { benchFig6(b, 64) }

func BenchmarkFig6b(b *testing.B) { benchFig6(b, 1024) }

func benchFig6(b *testing.B, block int) {
	for _, name := range SmallWorkloads() {
		b.Run(name, func(b *testing.B) {
			o := benchOpts()
			o.Workloads = []string{name}
			for i := 0; i < b.N; i++ {
				if err := Fig6(o, block); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLargeSetsScaled runs the §7 schedule study on runs scaled to a
// few percent of the paper's large data sets, preserving the object sizes
// and sharing structure.
func BenchmarkLargeSetsScaled(b *testing.B) {
	scaled := []*Benchmark{
		LU(100, 16),
		MP3D(4000, 2, 16),
		Water(96, 1, 16),
	}
	for _, w := range scaled {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, block := range []int{64, 1024} {
					g := MustGeometry(block)
					for _, proto := range []string{"MIN", "OTF", "SRD"} {
						if _, err := RunProtocol(proto, w.Reader(), g); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// Component microbenchmarks. Throughput is reported in refs/s via the ns/op
// of one full pass over the cached LU32 trace (~70k references).

func BenchmarkClassifierOurs(b *testing.B) {
	tr := benchTrace()
	g := MustGeometry(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Classify(tr.Reader(), g); err != nil {
			b.Fatal(err)
		}
	}
	reportRefRate(b, tr)
}

// BenchmarkShardedClassifier runs the Appendix A classification through the
// block-sharded pipeline at several shard counts; shards=1 is the serial
// baseline (no demux), so the subbenchmarks read as a before/after for the
// sharded path on this host.
func BenchmarkShardedClassifier(b *testing.B) {
	tr := benchTrace()
	g := MustGeometry(64)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ShardedClassify(tr.Reader(), g, shards); err != nil {
					b.Fatal(err)
				}
			}
			reportRefRate(b, tr)
		})
	}
}

func BenchmarkClassifierEggers(b *testing.B) {
	tr := benchTrace()
	g := MustGeometry(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ClassifyEggers(tr.Reader(), g); err != nil {
			b.Fatal(err)
		}
	}
	reportRefRate(b, tr)
}

func BenchmarkClassifierTorrellas(b *testing.B) {
	tr := benchTrace()
	g := MustGeometry(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ClassifyTorrellas(tr.Reader(), g); err != nil {
			b.Fatal(err)
		}
	}
	reportRefRate(b, tr)
}

func BenchmarkProtocol(b *testing.B) {
	tr := benchTrace()
	g := MustGeometry(64)
	for _, name := range Protocols() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunProtocol(name, tr.Reader(), g); err != nil {
					b.Fatal(err)
				}
			}
			reportRefRate(b, tr)
		})
	}
}

// BenchmarkBatchDrain measures the two reference-delivery paths over the
// cached trace: per-ref Next calls versus NextBatch into a reusable buffer.
// The spread between the subbenchmarks is the dispatch overhead the batched
// replay engine removes.
func BenchmarkBatchDrain(b *testing.B) {
	tr := benchTrace()
	b.Run("next", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := tr.Reader()
			for {
				if _, err := r.Next(); err != nil {
					break
				}
			}
		}
		reportRefRate(b, tr)
	})
	b.Run("batch", func(b *testing.B) {
		buf := make([]Ref, 1024)
		for i := 0; i < b.N; i++ {
			r := tr.Reader().(BatchReader)
			for {
				if _, err := r.NextBatch(buf); err != nil {
					break
				}
			}
		}
		reportRefRate(b, tr)
	})
}

// BenchmarkDriveClassifier measures the full replay engine (Drive) feeding
// the Appendix A classifier, the end-to-end unit the experiments repeat.
func BenchmarkDriveClassifier(b *testing.B) {
	tr := benchTrace()
	g := MustGeometry(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewClassifier(tr.Procs, g)
		if err := Drive(tr.Reader(), c); err != nil {
			b.Fatal(err)
		}
		c.Finish()
	}
	reportRefRate(b, tr)
}

func BenchmarkGenerate(b *testing.B) {
	for _, name := range []string{"LU32", "JACOBI"} {
		b.Run(name, func(b *testing.B) {
			w, err := Workload(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				r := w.Reader()
				n := 0
				for {
					if _, err := r.Next(); err != nil {
						break
					}
					n++
				}
				if n == 0 {
					b.Fatal("empty generation")
				}
			}
		})
	}
}

func BenchmarkBinaryCodec(b *testing.B) {
	tr := benchTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr.Reader()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			out.Grow(len(data))
			if err := WriteBinary(&out, tr.Reader()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			dec, err := NewDecoder(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := dec.Next(); err != nil {
					break
				}
			}
		}
	})
}

// BenchmarkObsOverhead measures the instrumentation layer's cost on the
// end-to-end replay unit (Drive feeding the Appendix A classifier): the
// "enabled" subbenchmark is the default recording path, "disabled" freezes
// the registry so every metric operation is a single atomic load. The
// spread between the two is the total observability overhead; the
// acceptance bound is within a few percent (see
// results/obs_overhead_bench.txt for the numbers on this host).
func BenchmarkObsOverhead(b *testing.B) {
	tr := benchTrace()
	g := MustGeometry(64)
	pass := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewClassifier(tr.Procs, g)
			if err := Drive(tr.Reader(), c); err != nil {
				b.Fatal(err)
			}
			c.Finish()
		}
		reportRefRate(b, tr)
	}
	b.Run("enabled", func(b *testing.B) {
		SetMetricsEnabled(true)
		b.ReportAllocs()
		pass(b)
	})
	b.Run("disabled", func(b *testing.B) {
		SetMetricsEnabled(false)
		defer SetMetricsEnabled(true)
		b.ReportAllocs()
		pass(b)
	})
}

func reportRefRate(b *testing.B, tr *Trace) {
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "refs/s")
}
