package uselessmiss

// Wiring tests for the facade: every wrapper is exercised once so that a
// renamed or re-plumbed internal API cannot silently break the public
// surface.

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFacadeClassifierWrappers(t *testing.T) {
	g, err := NewGeometry(16)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(2, S(0, 0), L(1, 0), S(0, 1), L(1, 1))

	eggers, refs, err := ClassifyEggers(tr.Reader(), g)
	if err != nil || refs != 4 {
		t.Fatalf("ClassifyEggers: %v refs=%d", err, refs)
	}
	torr, _, err := ClassifyTorrellas(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	if eggers.Total() == 0 || torr.Total() == 0 {
		t.Error("empty sharing counts")
	}
	if Rate(1, 4) != 25 {
		t.Error("Rate wrong")
	}

	matrix, _, err := Cross(tr.Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.Total() == 0 {
		t.Error("empty cross matrix")
	}
	if Agreement(matrix.OursVsEggers()) <= 0 {
		t.Error("Agreement wrong")
	}
	cc := NewCrossClassifier(2, g)
	for _, r := range tr.Refs {
		cc.Ref(r)
	}
	m2, _, _, _ := cc.Finish()
	if m2 != matrix {
		t.Error("incremental cross disagrees with Cross")
	}
}

func TestFacadeProtocolWrappers(t *testing.T) {
	g := MustGeometry(8)
	if got := ExtensionProtocols(); len(got) != 2 {
		t.Errorf("ExtensionProtocols = %v", got)
	}
	if _, err := NewCompetitiveUpdate(2, g, 3); err != nil {
		t.Errorf("NewCompetitiveUpdate: %v", err)
	}
	if _, err := NewLimitedWBWI(2, g, 1); err != nil {
		t.Errorf("NewLimitedWBWI: %v", err)
	}
	if _, err := NewSectored(2, g, 8); err != nil {
		t.Errorf("NewSectored: %v", err)
	}
	if _, err := NewSectored(2, g, 3); err == nil {
		t.Error("bad sector accepted")
	}
	if _, err := NewFiniteClassifier(2, g, CacheConfig{CapacityBytes: 64, Assoc: 1}); err != nil {
		t.Errorf("NewFiniteClassifier: %v", err)
	}
	if PolicyLRU.String() != "LRU" || PolicyFIFO.String() != "FIFO" || PolicyRandom.String() != "Random" {
		t.Error("policy constants wrong")
	}
}

func TestFacadeTimingWrappers(t *testing.T) {
	m := DefaultTimingModel()
	if m.MissPenalty == 0 {
		t.Error("default model has no miss penalty")
	}
	tr := NewTrace(1, L(0, 0), L(0, 0))
	times, err := RunTimed("OTF", tr.Reader(), MustGeometry(8), m)
	if err != nil {
		t.Fatal(err)
	}
	if times.Cycles != 2+m.MissPenalty {
		t.Errorf("cycles = %d", times.Cycles)
	}
}

func TestFacadeExperimentWrappers(t *testing.T) {
	base := ExperimentOptions{Out: io.Discard, Quick: true, Workloads: []string{"LU32"}}
	for name, fn := range map[string]func() error{
		"Table1":      func() error { return Table1(base) },
		"Table2":      func() error { return Table2(base) },
		"Fig5":        func() error { o := base; o.Blocks = []int{64}; return Fig5(o) },
		"Fig6":        func() error { o := base; o.Protocols = []string{"MIN"}; return Fig6(o, 64) },
		"Large":       func() error { o := base; o.Protocols = []string{"MIN", "OTF"}; return Large(o) },
		"Traffic":     func() error { o := base; o.Protocols = []string{"MIN", "WU"}; return Traffic(o) },
		"FiniteSweep": func() error { return FiniteSweep(base, 64, 2) },
		"Compare":     func() error { return Compare(base, 64) },
		"Penalty":     func() error { o := base; o.Protocols = []string{"MIN"}; return Penalty(o, 64, DefaultTimingModel()) },
		"Hotspots":    func() error { return Hotspots(base, 64) },
	} {
		if err := fn(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFacadeRegions(t *testing.T) {
	w, err := Workload("MP3D1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Regions) == 0 {
		t.Fatal("no regions")
	}
	var r Region = w.Regions[0]
	if r.Name != "particles" || !r.Contains(r.Start) || r.Contains(r.End) {
		t.Errorf("region semantics wrong: %+v", r)
	}
	if w.RegionOf(r.Start) != "particles" {
		t.Error("RegionOf wrong")
	}
	if w.RegionOf(1<<40) != "other" {
		t.Error("RegionOf fallback wrong")
	}
}

func TestFacadeMiscWrappers(t *testing.T) {
	g := MustGeometry(32)
	if g.String() != "B=32" {
		t.Errorf("Geometry.String = %q", g.String())
	}
	res, err := RunProtocol("MIN", NewTrace(1, L(0, 0)).Reader(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissRate() != 100 {
		t.Errorf("MissRate = %v", res.MissRate())
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, NewTrace(1, L(0, 0)).Reader()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P0 LD 0") {
		t.Errorf("WriteText output %q", buf.String())
	}
}
