package uselessmiss_test

// Runnable documentation examples for the public API. Each compiles and
// runs under `go test` and renders on the package documentation page.

import (
	"fmt"

	uselessmiss "repro"
)

// Classify a hand-written two-processor false-sharing pattern: the two
// processors write neighboring words of one 8-byte block and never read
// each other's values, so after the two cold misses every miss is useless.
func ExampleClassify() {
	g := uselessmiss.MustGeometry(8)
	tr := uselessmiss.NewTrace(2,
		uselessmiss.S(0, 0), uselessmiss.S(1, 1),
		uselessmiss.S(0, 0), uselessmiss.S(1, 1),
	)
	counts, refs, _ := uselessmiss.Classify(tr.Reader(), g)
	fmt.Printf("refs=%d misses=%d essential=%d useless=%d\n",
		refs, counts.Total(), counts.Essential(), counts.Useless())
	// Output:
	// refs=4 misses=4 essential=2 useless=2
}

// The MIN protocol's miss count is the essential miss count: the write
// -through word-invalidate schedule eliminates the useless misses that the
// on-the-fly schedule takes.
func ExampleRunProtocol() {
	g := uselessmiss.MustGeometry(8)
	tr := uselessmiss.NewTrace(2,
		uselessmiss.L(0, 0), // proc 0 reads word 0
		uselessmiss.L(1, 1), // proc 1 reads the neighboring word
		uselessmiss.S(0, 0), // proc 0 rewrites its word
		uselessmiss.L(1, 1), // proc 1 rereads its own word
	)
	otf, _ := uselessmiss.RunProtocol("OTF", tr.Reader(), g)
	min, _ := uselessmiss.RunProtocol("MIN", tr.Reader(), g)
	fmt.Printf("OTF misses=%d MIN misses=%d\n", otf.Misses, min.Misses)
	// Output:
	// OTF misses=3 MIN misses=2
}

// The paper's Figure 1 at a two-word block: four references produce one
// pure cold miss, one cold-and-true-sharing miss and one pure true sharing
// miss — three essential misses.
func ExampleCounts() {
	g := uselessmiss.MustGeometry(8)
	tr := uselessmiss.NewTrace(2,
		uselessmiss.S(0, 0), uselessmiss.L(1, 0),
		uselessmiss.S(0, 1), uselessmiss.L(1, 1),
	)
	counts, _, _ := uselessmiss.Classify(tr.Reader(), g)
	fmt.Printf("PC=%d CTS=%d PTS=%d PFS=%d\n", counts.PC, counts.CTS, counts.PTS, counts.PFS)
	// Output:
	// PC=1 CTS=1 PTS=1 PFS=0
}

// Streaming generation: traces need not fit in memory.
func ExampleGenerate() {
	r := uselessmiss.Generate(2, func(e *uselessmiss.Emitter) {
		for i := 0; i < 1000; i++ {
			e.Load(i%2, uselessmiss.Addr(i%64))
		}
	})
	counts, refs, _ := uselessmiss.Classify(r, uselessmiss.MustGeometry(64))
	fmt.Printf("refs=%d cold=%d\n", refs, counts.Cold())
	// Output:
	// refs=1000 cold=8
}

// Replacement misses under finite caches are essential (§8): a one-block
// cache turns every alternation between two blocks into a replacement miss.
func ExampleClassifyFinite() {
	g := uselessmiss.MustGeometry(32)
	tr := uselessmiss.NewTrace(1,
		uselessmiss.L(0, 0), uselessmiss.L(0, 8),
		uselessmiss.L(0, 0), uselessmiss.L(0, 8),
	)
	cfg := uselessmiss.CacheConfig{CapacityBytes: 32, Assoc: 1}
	counts, _, _ := uselessmiss.ClassifyFinite(tr.Reader(), g, cfg)
	fmt.Printf("cold=%d repl=%d essential=%d\n", counts.Cold(), counts.Repl, counts.Essential())
	// Output:
	// cold=2 repl=2 essential=4
}
